//! An adaptive per-query planner (extension beyond the paper).
//!
//! The paper fixes one algorithm per experiment; a production service
//! provider would rather pick per query, using information it already has
//! for free: the merged grid `g₀`, the per-silo grids `g_k`, and an
//! accuracy/communication policy. [`AdaptivePlanner`] does exactly that:
//!
//! 1. **no boundary cells** → the Non-IID path answers exactly from `g₀`
//!    with zero silo contact — always take it;
//! 2. **tight error target** (below what sampling can promise for this
//!    query's boundary share) → fall back to EXACT;
//! 3. **tight communication budget** (below the Non-IID per-cell
//!    transfer) → IID-est, the O(1)-bytes option;
//! 4. otherwise choose by measured *partition skew* over the query's
//!    cells: low skew → IID-est (cheapest), high skew → NonIID-est
//!    (unbiased under skew).
//!
//! The skew score is the maximum, over silos, of the total-variation
//! distance between the silo's COUNT distribution and the federation's
//! over the cells intersecting the range — a direct, data-driven proxy
//! for "how wrong would IID-est's single-scalar re-weighting be here".
//! Every decision is returned alongside the answer for observability.

use fedra_federation::Federation;
use fedra_geo::intersection_area;
use fedra_index::{Aggregate, PyramidEstimate};
use fedra_obs::{labeled, ObsContext};

use crate::algorithm::FraAlgorithm;
use crate::exact::Exact;
use crate::helpers;
use crate::query::{FraError, FraQuery, QueryResult};
use crate::sampling::{IidEst, NonIidEst};

/// The planner's policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerPolicy {
    /// Expected-relative-error target. Queries whose boundary share makes
    /// sampling unlikely to meet it are escalated to EXACT.
    pub target_error: f64,
    /// Optional per-query communication budget in bytes (payload +
    /// envelope). `None` = unconstrained.
    pub comm_budget_bytes: Option<u64>,
    /// Skew threshold above which NonIID-est is preferred over IID-est.
    pub skew_threshold: f64,
    /// Serve COUNT/SUM/SUM_SQR queries from the merged grid's coarsening
    /// pyramid when the coarse answer's *computed* boundary bound fits
    /// `target_error` — zero silo contact, O(perimeter) coarse cells
    /// instead of O(area) fine ones. Off by default: the pyramid trades a
    /// bounded approximation for speed, and default-policy answers must
    /// stay bit-identical to the pyramid-free planner.
    pub pyramid: bool,
}

impl Default for PlannerPolicy {
    fn default() -> Self {
        Self {
            target_error: 0.05,
            comm_budget_bytes: None,
            skew_threshold: 0.10,
            pyramid: false,
        }
    }
}

/// Which algorithm the planner chose, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecision {
    /// No boundary cells: answered exactly from `g₀`, zero silo contact.
    GridExact,
    /// The coarsening pyramid's refinement settled within the error
    /// target: answered from coarse cells, zero silo contact.
    PyramidServed {
        /// The pyramid level the refinement frontier settled at (0 = the
        /// fine grid itself, with area-weighted boundary cells).
        level: u32,
    },
    /// Error target unreachable by sampling: escalated to EXACT fan-out.
    Exact {
        /// Boundary share that forced the escalation (0–1).
        boundary_share_percent: u32,
    },
    /// Communication budget ruled out per-cell transfer: IID-est.
    IidForBudget,
    /// Low measured skew: IID-est suffices.
    IidLowSkew,
    /// High measured skew: NonIID-est.
    NonIidHighSkew,
}

/// The adaptive planner. Wraps one instance of each strategy.
pub struct AdaptivePlanner {
    policy: PlannerPolicy,
    exact: Exact,
    iid: IidEst,
    noniid: NonIidEst,
}

impl AdaptivePlanner {
    /// Creates a planner with the given policy; `seed` drives the wrapped
    /// estimators' silo sampling.
    pub fn new(seed: u64, policy: PlannerPolicy) -> Self {
        Self {
            policy,
            exact: Exact::new(),
            iid: IidEst::new(seed),
            noniid: NonIidEst::new(seed ^ 0x00AD_A94E),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> PlannerPolicy {
        self.policy
    }

    /// Plans (without executing): the decision the planner would take.
    pub fn plan(&self, federation: &Federation, query: &FraQuery) -> PlanDecision {
        self.plan_extended(federation, query).0
    }

    /// [`Self::plan`], plus the pyramid estimate when the decision is
    /// [`PlanDecision::PyramidServed`] — so the execution path consumes
    /// the refinement it already paid for instead of re-running it.
    /// (`PlanDecision` itself stays `Copy + Eq`, so the f64-bearing
    /// estimate rides alongside rather than inside it.)
    fn plan_extended(
        &self,
        federation: &Federation,
        query: &FraQuery,
    ) -> (PlanDecision, Option<PyramidEstimate>) {
        let grid = federation.merged_grid();
        let spec = grid.spec();
        let cls = spec.classify(&query.range);
        if cls.boundary.is_empty() {
            return (PlanDecision::GridExact, None);
        }

        // Boundary share: the fraction of the expected in-range mass that
        // must be *estimated* rather than read exactly. Boundary cells are
        // weighted by their covered-area fraction so that degenerate
        // zero-width overlaps (a closed query edge grazing the next cell
        // column) contribute nothing. The same sweep accumulates the
        // pyramid's level-0 error bound `Σ max(frac, 1−frac)·mass` when
        // the pyramid is eligible — one intersection_area per cell serves
        // both consumers, and the pyramid-off accumulation order is
        // unchanged (bit-identity across the knob).
        //
        // The pyramid applies to the monotone aggregates only: Avg/Stdev
        // are ratios of these, so their error does not compose the same
        // way; they skip it.
        let pyramid_eligible = self.policy.pyramid
            && matches!(
                query.func,
                fedra_index::AggFunc::Count
                    | fedra_index::AggFunc::Sum
                    | fedra_index::AggFunc::SumSqr
            );
        let covered: Aggregate = grid.aggregate_cells(cls.covered.iter().copied());
        let mut l0_bound = Aggregate::ZERO;
        let mut boundary_mass = 0.0f64;
        for &c in &cls.boundary {
            let rect = spec.cell_rect_of(c);
            let frac = intersection_area(&query.range, &rect) / rect.area();
            boundary_mass += grid.cell(c).count * frac;
            // frac == 0 cells are measure-zero grazes the refinement also
            // drops; they must not inflate the gate with full-mass terms.
            if pyramid_eligible && frac > 0.0 {
                l0_bound.merge_in(&grid.cell(c).scale(frac.max(1.0 - frac)));
            }
        }
        let total_mass = covered.count + boundary_mass;
        if total_mass <= 0.0 || boundary_mass < 1e-9 {
            // Nothing to estimate: g₀ answers exactly.
            return (PlanDecision::GridExact, None);
        }

        // Pyramid serving: try the coarse levels — the refinement reports
        // a *computed* error bound, and the answer is taken only when that
        // bound fits the target. Gate on the level-0 bound first: the
        // fine grid is the refinement's floor, so when even level 0
        // cannot fit the target no descent can, and the whole estimate
        // (the expensive part for unservable queries, which otherwise
        // refine all the way down) is skipped on numbers this sweep
        // already computed.
        if pyramid_eligible {
            let rel = |bound: f64, interior: f64| -> f64 {
                if bound <= 0.0 {
                    0.0
                } else if interior <= 0.0 {
                    f64::INFINITY
                } else {
                    bound / interior
                }
            };
            let l0_rel = rel(l0_bound.count, covered.count)
                .max(rel(l0_bound.sum, covered.sum))
                .max(rel(l0_bound.sum_sqr, covered.sum_sqr));
            if l0_rel <= self.policy.target_error {
                let est = federation.merged_pyramid().estimate(
                    federation.merged_grid(),
                    &query.range,
                    self.policy.target_error,
                );
                if est.meets(self.policy.target_error) {
                    return (PlanDecision::PyramidServed { level: est.level }, Some(est));
                }
            }
        }
        let boundary_share = boundary_mass / total_mass;
        // A sampled silo sees ~1/m of the boundary mass; estimating the
        // in-range proportion from s samples carries ~1/√s relative
        // noise, diluted by the boundary share of the answer.
        let m = federation.num_silos() as f64;
        let samples_per_silo = (boundary_mass / m).max(1.0);
        let plausible_error = boundary_share / samples_per_silo.sqrt();
        if plausible_error > self.policy.target_error {
            return (
                PlanDecision::Exact {
                    boundary_share_percent: (boundary_share * 100.0) as u32,
                },
                None,
            );
        }

        // Communication budget: NonIID ships 4 bytes up + 24 bytes down
        // per boundary cell, plus one request/response envelope pair.
        if let Some(budget) = self.policy.comm_budget_bytes {
            let envelope = 2 * 512; // DEFAULT_MESSAGE_OVERHEAD both ways
            let noniid_cost = envelope as u64 + 27 + 4 + cls.boundary.len() as u64 * 28 + 5;
            if noniid_cost > budget {
                return (PlanDecision::IidForBudget, None);
            }
        }

        // Skew over the relevant cells: TV distance between each silo's
        // per-cell distribution and the federation's, minus the TV a
        // *perfectly IID* silo of the same size would show from sampling
        // noise alone (E|p̂−p| ≈ √(2p(1−p)/(πn)) per cell). Without the
        // noise floor, large uniform federations would read as skewed.
        let cells: Vec<u32> = cls.iter().collect();
        let g0_total: f64 = cells.iter().map(|&c| grid.cell(c).count).sum();
        let mut max_excess = 0.0f64;
        for k in 0..federation.num_silos() {
            let silo_grid = federation.silo_grid(k);
            let k_total: f64 = cells.iter().map(|&c| silo_grid.cell(c).count).sum();
            if k_total <= 0.0 {
                // A silo with no data here is maximally skewed.
                max_excess = 1.0;
                break;
            }
            let mut tv = 0.0;
            let mut noise_floor = 0.0;
            for &c in &cells {
                let p = grid.cell(c).count / g0_total;
                let p_k = silo_grid.cell(c).count / k_total;
                tv += (p_k - p).abs();
                noise_floor += (2.0 * p * (1.0 - p) / (std::f64::consts::PI * k_total)).sqrt();
            }
            max_excess = max_excess.max((tv - noise_floor) / 2.0);
        }
        if max_excess > self.policy.skew_threshold {
            (PlanDecision::NonIidHighSkew, None)
        } else {
            (PlanDecision::IidLowSkew, None)
        }
    }

    /// Plans and executes, returning the decision with the result.
    pub fn execute_planned(
        &self,
        federation: &Federation,
        query: &FraQuery,
    ) -> Result<(PlanDecision, QueryResult), FraError> {
        self.execute_planned_with(federation, query, ObsContext::noop())
    }

    /// Plans and executes with instrumentation, counting each decision
    /// under `fedra_plan_decision_total{decision="..."}`.
    pub fn execute_planned_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<(PlanDecision, QueryResult), FraError> {
        let (decision, pyramid_estimate) = self.plan_extended(federation, query);
        if obs.is_enabled() {
            let tag = match decision {
                PlanDecision::GridExact => "grid_exact",
                PlanDecision::PyramidServed { .. } => "pyramid_served",
                PlanDecision::Exact { .. } => "exact",
                PlanDecision::IidForBudget => "iid_for_budget",
                PlanDecision::IidLowSkew => "iid_low_skew",
                PlanDecision::NonIidHighSkew => "noniid_high_skew",
            };
            obs.inc(&labeled("fedra_plan_decision_total", "decision", tag));
            if let PlanDecision::PyramidServed { level } = decision {
                obs.inc(&labeled(
                    "fedra_pyramid_level_total",
                    "level",
                    &level.to_string(),
                ));
            }
        }
        let result = match decision {
            // No estimable boundary mass: answer from the provider's own
            // grid state, zero silo contact. (grid_only_estimate adds the
            // area-weighted boundary term, which is ~0 by construction
            // whenever this branch is chosen.)
            PlanDecision::GridExact => QueryResult::from_aggregate(
                helpers::grid_only_estimate(federation, &query.range),
                query.func,
            ),
            // Coarse serve: the refinement's aggregate, carried over from
            // planning so it is not paid for twice. Zero silo contact,
            // like GridExact. (The recompute arm is unreachable from
            // plan_extended; it keeps the match total without panicking.)
            PlanDecision::PyramidServed { .. } => {
                let aggregate = match pyramid_estimate {
                    Some(est) => est.aggregate,
                    None => {
                        federation
                            .merged_pyramid()
                            .estimate(
                                federation.merged_grid(),
                                &query.range,
                                self.policy.target_error,
                            )
                            .aggregate
                    }
                };
                QueryResult::from_aggregate(aggregate, query.func)
            }
            PlanDecision::Exact { .. } => self.exact.try_execute_with(federation, query, obs)?,
            PlanDecision::IidForBudget | PlanDecision::IidLowSkew => {
                self.iid.try_execute_with(federation, query, obs)?
            }
            PlanDecision::NonIidHighSkew => self.noniid.try_execute_with(federation, query, obs)?,
        };
        Ok((decision, result))
    }
}

impl FraAlgorithm for AdaptivePlanner {
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        self.execute_planned_with(federation, query, obs)
            .map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::AggFunc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(partitions: Vec<Vec<SpatialObject>>) -> Federation {
        FederationBuilder::new(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)))
            .grid_cell_len(5.0)
            .histogram_config(MinSkewConfig {
                resolution: 8,
                budget: 8,
            })
            .build(partitions)
    }

    fn uniform_partitions(m: usize, per_silo: usize, seed: u64) -> Vec<Vec<SpatialObject>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                (0..per_silo)
                    .map(|_| {
                        SpatialObject::at(
                            rng.random_range(0.0..100.0),
                            rng.random_range(0.0..100.0),
                            1.0,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn corner_partitions(per_silo: usize, seed: u64) -> Vec<Vec<SpatialObject>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let foci = [(25.0, 25.0), (75.0, 75.0)];
        foci.iter()
            .map(|&(fx, fy)| {
                (0..per_silo)
                    .map(|_| {
                        let x: f64 = fx + rng.random_range(-20.0..20.0);
                        let y: f64 = fy + rng.random_range(-20.0..20.0);
                        SpatialObject::at(x.clamp(0.0, 100.0), y.clamp(0.0, 100.0), 1.0)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cell_aligned_queries_choose_grid_exact() {
        let fed = build(uniform_partitions(3, 2000, 1));
        let planner = AdaptivePlanner::new(2, PlannerPolicy::default());
        let q = FraQuery::rect(
            Point::new(10.0, 10.0),
            Point::new(60.0, 60.0),
            AggFunc::Count,
        );
        assert_eq!(planner.plan(&fed, &q), PlanDecision::GridExact);
        fed.reset_query_comm();
        let (decision, result) = planner.execute_planned(&fed, &q).unwrap();
        assert_eq!(decision, PlanDecision::GridExact);
        assert!(result.value > 0.0);
        assert_eq!(fed.query_comm().rounds, 0);
    }

    #[test]
    fn uniform_data_chooses_iid() {
        let fed = build(uniform_partitions(4, 5000, 3));
        let planner = AdaptivePlanner::new(4, PlannerPolicy::default());
        let q = FraQuery::circle(Point::new(50.0, 50.0), 17.0, AggFunc::Count);
        assert_eq!(planner.plan(&fed, &q), PlanDecision::IidLowSkew);
    }

    #[test]
    fn skewed_data_chooses_noniid() {
        let fed = build(corner_partitions(4000, 5));
        let planner = AdaptivePlanner::new(6, PlannerPolicy::default());
        // A query near one focus: the two silos' local distributions
        // diverge hard over its cells.
        let q = FraQuery::circle(Point::new(30.0, 30.0), 17.0, AggFunc::Count);
        assert_eq!(planner.plan(&fed, &q), PlanDecision::NonIidHighSkew);
    }

    #[test]
    fn tight_error_targets_escalate_to_exact() {
        let fed = build(uniform_partitions(3, 300, 7));
        let policy = PlannerPolicy {
            target_error: 0.001,
            ..PlannerPolicy::default()
        };
        let planner = AdaptivePlanner::new(8, policy);
        // Small radius → almost all relevant mass is boundary mass, and a
        // 0.1 % target is not plausible from a sparse sample.
        let q = FraQuery::circle(Point::new(50.0, 50.0), 4.0, AggFunc::Count);
        match planner.plan(&fed, &q) {
            PlanDecision::Exact {
                boundary_share_percent,
            } => {
                assert!(boundary_share_percent > 30);
            }
            other => panic!("expected EXACT escalation, got {other:?}"),
        }
        let (_, result) = planner.execute_planned(&fed, &q).unwrap();
        // EXACT means zero error.
        let truth = Exact::new().execute(&fed, &q).value;
        assert_eq!(result.value, truth);
    }

    #[test]
    fn comm_budget_forces_iid() {
        let fed = build(corner_partitions(4000, 9));
        let policy = PlannerPolicy {
            target_error: 0.5,             // lax, so budget is the binding constraint
            comm_budget_bytes: Some(1100), // below envelope + per-cell cost
            skew_threshold: 0.0,           // would otherwise always pick NonIID
            ..PlannerPolicy::default()
        };
        let planner = AdaptivePlanner::new(10, policy);
        let q = FraQuery::circle(Point::new(30.0, 30.0), 17.0, AggFunc::Count);
        assert_eq!(planner.plan(&fed, &q), PlanDecision::IidForBudget);
    }

    #[test]
    fn pyramid_off_is_bit_identical_to_default_policy() {
        // The pyramid knob defaults off, and an explicit `false` must not
        // perturb any decision or answer.
        let fed = build(corner_partitions(3000, 15));
        let default_planner = AdaptivePlanner::new(16, PlannerPolicy::default());
        let off = AdaptivePlanner::new(
            16,
            PlannerPolicy {
                pyramid: false,
                ..PlannerPolicy::default()
            },
        );
        for (cx, cy, r) in [(30.0, 30.0, 17.0), (70.0, 70.0, 9.0), (50.0, 50.0, 28.0)] {
            let q = FraQuery::circle(Point::new(cx, cy), r, AggFunc::Sum);
            let (da, ra) = default_planner.execute_planned(&fed, &q).unwrap();
            let (db, rb) = off.execute_planned(&fed, &q).unwrap();
            assert_eq!(da, db);
            assert_eq!(ra.value.to_bits(), rb.value.to_bits());
            assert!(!matches!(da, PlanDecision::PyramidServed { .. }));
        }
    }

    #[test]
    fn pyramid_serves_within_target_and_without_silo_contact() {
        // The worst-case frontier bound scales like cell_len / radius, so
        // a fine grid (1.0 vs the helper's 5.0) is what lets a 10 % target
        // be met from provider state alone.
        let fed = FederationBuilder::new(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)))
            .grid_cell_len(1.0)
            .histogram_config(MinSkewConfig {
                resolution: 8,
                budget: 8,
            })
            .build(uniform_partitions(4, 5000, 17));
        let policy = PlannerPolicy {
            target_error: 0.10,
            pyramid: true,
            ..PlannerPolicy::default()
        };
        let planner = AdaptivePlanner::new(18, policy);
        // A big range: plenty of interior mass, so the coarse bound fits.
        let q = FraQuery::circle(Point::new(50.0, 50.0), 30.0, AggFunc::Count);
        let decision = planner.plan(&fed, &q);
        assert!(
            matches!(decision, PlanDecision::PyramidServed { .. }),
            "expected pyramid serve, got {decision:?}"
        );
        let truth = Exact::new().execute(&fed, &q).value;
        fed.reset_query_comm();
        let (_, result) = planner.execute_planned(&fed, &q).unwrap();
        assert_eq!(fed.query_comm().rounds, 0, "pyramid serve is provider-only");
        assert!(
            result.relative_error(truth) <= policy.target_error,
            "pyramid answer {} vs truth {} exceeds target",
            result.value,
            truth
        );
    }

    #[test]
    fn pyramid_never_serves_ratio_aggregates() {
        let fed = build(uniform_partitions(4, 5000, 19));
        let policy = PlannerPolicy {
            target_error: 0.10,
            pyramid: true,
            ..PlannerPolicy::default()
        };
        let planner = AdaptivePlanner::new(20, policy);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 30.0, AggFunc::Avg);
        assert!(
            !matches!(planner.plan(&fed, &q), PlanDecision::PyramidServed { .. }),
            "AVG must not take the pyramid path"
        );
    }

    #[test]
    fn planner_is_a_drop_in_algorithm() {
        let fed = build(uniform_partitions(3, 3000, 11));
        let planner = AdaptivePlanner::new(12, PlannerPolicy::default());
        let q = FraQuery::circle(Point::new(50.0, 50.0), 15.0, AggFunc::Count);
        let truth = Exact::new().execute(&fed, &q).value;
        let r = planner.execute(&fed, &q);
        assert_eq!(planner.name(), "Adaptive");
        assert!(r.relative_error(truth) < 0.3);
    }

    #[test]
    fn empty_region_answers_zero_without_contact() {
        let fed = build(uniform_partitions(2, 500, 13));
        let planner = AdaptivePlanner::new(14, PlannerPolicy::default());
        let q = FraQuery::circle(Point::new(-400.0, -400.0), 3.0, AggFunc::Count);
        fed.reset_query_comm();
        let (decision, result) = planner.execute_planned(&fed, &q).unwrap();
        assert_eq!(decision, PlanDecision::GridExact);
        assert_eq!(result.value, 0.0);
        assert_eq!(fed.query_comm().rounds, 0);
    }
}
