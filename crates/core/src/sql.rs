//! A minimal SQL-style frontend for FRA queries.
//!
//! The paper's line of work culminated in Hu-Fu, a federated system that
//! exposes spatial aggregation through SQL. `fedra` keeps a deliberately
//! tiny dialect — one statement shape, no joins, no projections — so that
//! dashboards and CLIs can accept human-writable strings:
//!
//! ```sql
//! SELECT COUNT(*)      FROM fleet WHERE WITHIN(4.0, 6.0, 3.0)
//! SELECT SUM(measure)  FROM fleet WHERE WITHIN(4.0, 6.0, 3.0)
//! SELECT AVG(measure)  FROM fleet WHERE INSIDE(0.0, 0.0, 10.0, 10.0)
//! SELECT STDEV(measure) FROM fleet WHERE WITHIN(4.0, 6.0, 3.0)
//! ```
//!
//! * `WITHIN(x, y, r)` — circular range centred at `(x, y)` with radius
//!   `r` (kilometres, planar coordinates);
//! * `INSIDE(x0, y0, x1, y1)` — rectangular range;
//! * functions: `COUNT(*)`, `SUM(measure)`, `SUM_SQR(measure)`,
//!   `AVG(measure)`, `STDEV(measure)` (the argument inside SUM/AVG/…
//!   must be `measure` — there is exactly one measure attribute,
//!   Definition 1);
//! * the table name is free-form and ignored (every query targets the
//!   federation).
//!
//! Keywords are case-insensitive; whitespace is free. Errors carry the
//! offending token, never a silent default.

use fedra_geo::{Point, Range};
use fedra_index::AggFunc;

use crate::query::FraQuery;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The statement does not start with `SELECT`.
    ExpectedSelect,
    /// Unknown aggregation function.
    UnknownFunction(String),
    /// The function argument is not `*` / `measure` as required.
    BadArgument {
        /// The function involved.
        function: String,
        /// What was found.
        argument: String,
    },
    /// Missing `FROM <table>`.
    ExpectedFrom,
    /// Missing `WHERE`.
    ExpectedWhere,
    /// Unknown range predicate.
    UnknownPredicate(String),
    /// A predicate had the wrong number of numeric arguments.
    BadArity {
        /// The predicate involved.
        predicate: String,
        /// Expected argument count.
        expected: usize,
        /// Found argument count.
        found: usize,
    },
    /// A numeric argument failed to parse.
    BadNumber(String),
    /// Trailing tokens after the statement.
    TrailingInput(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::ExpectedSelect => write!(f, "expected SELECT"),
            SqlError::UnknownFunction(t) => write!(
                f,
                "unknown aggregation function `{t}` (COUNT|SUM|SUM_SQR|AVG|STDEV)"
            ),
            SqlError::BadArgument { function, argument } => write!(
                f,
                "bad argument `{argument}` for {function} (use `*` for COUNT, `measure` otherwise)"
            ),
            SqlError::ExpectedFrom => write!(f, "expected FROM <table>"),
            SqlError::ExpectedWhere => write!(f, "expected WHERE <predicate>"),
            SqlError::UnknownPredicate(t) => {
                write!(f, "unknown predicate `{t}` (WITHIN|INSIDE)")
            }
            SqlError::BadArity {
                predicate,
                expected,
                found,
            } => write!(f, "{predicate} takes {expected} numbers, found {found}"),
            SqlError::BadNumber(t) => write!(f, "`{t}` is not a number"),
            SqlError::TrailingInput(t) => write!(f, "unexpected trailing input `{t}`"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Tokenizer: splits on whitespace, commas and parentheses, keeping the
/// latter as their own tokens.
fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in input.chars() {
        match ch {
            '(' | ')' | ',' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

struct Cursor {
    tokens: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<&str> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn expect(&mut self, what: &str) -> bool {
        match self.tokens.get(self.pos) {
            Some(t) if t.eq_ignore_ascii_case(what) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn numbers_in_parens(&mut self, predicate: &str, arity: usize) -> Result<Vec<f64>, SqlError> {
        if !self.expect("(") {
            return Err(SqlError::BadArity {
                predicate: predicate.to_string(),
                expected: arity,
                found: 0,
            });
        }
        let mut numbers = Vec::new();
        loop {
            match self.next() {
                Some(")") => break,
                Some(",") => continue,
                Some(token) => {
                    let value: f64 = token
                        .parse()
                        .map_err(|_| SqlError::BadNumber(token.to_string()))?;
                    numbers.push(value);
                }
                None => break,
            }
        }
        if numbers.len() != arity {
            return Err(SqlError::BadArity {
                predicate: predicate.to_string(),
                expected: arity,
                found: numbers.len(),
            });
        }
        Ok(numbers)
    }
}

/// Parses one statement into an [`FraQuery`].
pub fn parse(input: &str) -> Result<FraQuery, SqlError> {
    let mut cursor = Cursor {
        tokens: tokenize(input),
        pos: 0,
    };
    if !cursor.expect("SELECT") {
        return Err(SqlError::ExpectedSelect);
    }

    // Aggregation function.
    let func_token = cursor.next().ok_or(SqlError::ExpectedSelect)?.to_string();
    let func = match func_token.to_ascii_uppercase().as_str() {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "SUM_SQR" => AggFunc::SumSqr,
        "AVG" => AggFunc::Avg,
        "STDEV" => AggFunc::Stdev,
        _ => return Err(SqlError::UnknownFunction(func_token)),
    };
    // Argument: (*) for COUNT, (measure) otherwise; tolerate both.
    if !cursor.expect("(") {
        return Err(SqlError::BadArgument {
            function: func_token,
            argument: String::new(),
        });
    }
    let argument = cursor
        .next()
        .ok_or_else(|| SqlError::BadArgument {
            function: func_token.clone(),
            argument: String::new(),
        })?
        .to_string();
    let argument_ok = match func {
        AggFunc::Count => argument == "*" || argument.eq_ignore_ascii_case("measure"),
        _ => argument.eq_ignore_ascii_case("measure"),
    };
    if !argument_ok {
        return Err(SqlError::BadArgument {
            function: func_token,
            argument,
        });
    }
    if !cursor.expect(")") {
        return Err(SqlError::BadArgument {
            function: func_token,
            argument: "unclosed (".to_string(),
        });
    }

    // FROM <table> — table name ignored.
    if !cursor.expect("FROM") {
        return Err(SqlError::ExpectedFrom);
    }
    cursor.next().ok_or(SqlError::ExpectedFrom)?;

    // WHERE <predicate>
    if !cursor.expect("WHERE") {
        return Err(SqlError::ExpectedWhere);
    }
    let predicate = cursor.next().ok_or(SqlError::ExpectedWhere)?.to_string();
    let range = match predicate.to_ascii_uppercase().as_str() {
        "WITHIN" => {
            let n = cursor.numbers_in_parens("WITHIN", 3)?;
            Range::circle(Point::new(n[0], n[1]), n[2])
        }
        "INSIDE" => {
            let n = cursor.numbers_in_parens("INSIDE", 4)?;
            Range::rect(Point::new(n[0], n[1]), Point::new(n[2], n[3]))
        }
        _ => return Err(SqlError::UnknownPredicate(predicate)),
    };

    if let Some(extra) = cursor.next() {
        if extra != ";" {
            return Err(SqlError::TrailingInput(extra.to_string()));
        }
    }

    Ok(FraQuery::new(range, func))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Circle;

    #[test]
    fn count_within_parses() {
        let q = parse("SELECT COUNT(*) FROM fleet WHERE WITHIN(4.0, 6.0, 3.0)").unwrap();
        assert_eq!(q.func, AggFunc::Count);
        assert_eq!(
            q.range,
            Range::Circle(Circle::new(Point::new(4.0, 6.0), 3.0))
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("select avg(measure) from bikes where within(0, -95, 2)").unwrap();
        assert_eq!(q.func, AggFunc::Avg);
    }

    #[test]
    fn inside_rect_parses() {
        let q = parse("SELECT SUM(measure) FROM t WHERE INSIDE(0, 0, 10, 20)").unwrap();
        assert_eq!(q.func, AggFunc::Sum);
        assert_eq!(
            q.range,
            Range::rect(Point::new(0.0, 0.0), Point::new(10.0, 20.0))
        );
    }

    #[test]
    fn every_function_parses() {
        for (text, func) in [
            ("COUNT(*)", AggFunc::Count),
            ("SUM(measure)", AggFunc::Sum),
            ("SUM_SQR(measure)", AggFunc::SumSqr),
            ("AVG(measure)", AggFunc::Avg),
            ("STDEV(measure)", AggFunc::Stdev),
        ] {
            let q = parse(&format!("SELECT {text} FROM f WHERE WITHIN(1, 2, 3)")).unwrap();
            assert_eq!(q.func, func, "for {text}");
        }
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let q = parse("SELECT COUNT(*) FROM f WHERE WITHIN(-3.5, 1e2, 2.5)").unwrap();
        match q.range {
            Range::Circle(c) => {
                assert_eq!(c.center, Point::new(-3.5, 100.0));
                assert_eq!(c.radius, 2.5);
            }
            _ => panic!("expected circle"),
        }
    }

    #[test]
    fn trailing_semicolon_is_fine() {
        assert!(parse("SELECT COUNT(*) FROM f WHERE WITHIN(1,2,3);").is_ok());
    }

    #[test]
    fn errors_name_the_problem() {
        assert_eq!(parse("INSERT INTO x"), Err(SqlError::ExpectedSelect));
        assert!(matches!(
            parse("SELECT MEDIAN(measure) FROM f WHERE WITHIN(1,2,3)"),
            Err(SqlError::UnknownFunction(t)) if t == "MEDIAN"
        ));
        assert!(matches!(
            parse("SELECT SUM(*) FROM f WHERE WITHIN(1,2,3)"),
            Err(SqlError::BadArgument { .. })
        ));
        assert_eq!(
            parse("SELECT COUNT(*) WHERE WITHIN(1,2,3)"),
            Err(SqlError::ExpectedFrom)
        );
        assert_eq!(
            parse("SELECT COUNT(*) FROM f"),
            Err(SqlError::ExpectedWhere)
        );
        assert!(matches!(
            parse("SELECT COUNT(*) FROM f WHERE NEAR(1,2,3)"),
            Err(SqlError::UnknownPredicate(t)) if t == "NEAR"
        ));
        assert!(matches!(
            parse("SELECT COUNT(*) FROM f WHERE WITHIN(1,2)"),
            Err(SqlError::BadArity {
                expected: 3,
                found: 2,
                ..
            })
        ));
        assert!(matches!(
            parse("SELECT COUNT(*) FROM f WHERE WITHIN(1,2,zebra)"),
            Err(SqlError::BadNumber(t)) if t == "zebra"
        ));
        assert!(matches!(
            parse("SELECT COUNT(*) FROM f WHERE WITHIN(1,2,3) GARBAGE"),
            Err(SqlError::TrailingInput(t)) if t == "GARBAGE"
        ));
    }

    #[test]
    fn error_messages_render() {
        for e in [
            SqlError::ExpectedSelect,
            SqlError::UnknownFunction("X".into()),
            SqlError::BadArgument {
                function: "SUM".into(),
                argument: "*".into(),
            },
            SqlError::ExpectedFrom,
            SqlError::ExpectedWhere,
            SqlError::UnknownPredicate("NEAR".into()),
            SqlError::BadArity {
                predicate: "WITHIN".into(),
                expected: 3,
                found: 1,
            },
            SqlError::BadNumber("zebra".into()),
            SqlError::TrailingInput("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
