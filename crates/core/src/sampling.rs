//! Single-silo sampling estimators: IID-est (Alg. 2) and NonIID-est
//! (Alg. 3), each with an LSR-accelerated variant (… + Alg. 6).
//!
//! Both estimators contact **one** uniformly sampled silo per query and
//! re-weight its partial answer with the grid statistics the provider
//! collected at setup (Alg. 1):
//!
//! * **IID-est** asks the sampled silo for its whole-range answer `res_k`
//!   and returns `sum₀ × res_k / sum_k` — a single scalar re-weighting,
//!   O(1) communication. Unbiased when silos are identically distributed
//!   (Theorem 1); biased under Non-IID partitions.
//! * **NonIID-est** exploits the locality assumption (objects within one
//!   grid cell follow one distribution): boundary-cell contributions are
//!   re-weighted *per cell* by `g₀[i] / g_k[i]`, while cells fully covered
//!   by the range contribute their exact `g₀` aggregates directly (the
//!   Sec. 4.2.2 remark) — O(√|g₀|) communication, unbiased even under
//!   Non-IID partitions (Theorem 3).
//!
//! The +LSR variants replace the silo's exact R-tree lookup with the
//! LSR-Forest query of Alg. 6; by Theorems 2 and 4 the composition stays
//! unbiased with a bounded accuracy guarantee.
//!
//! Beyond the paper, the estimators handle silo failures by resampling
//! among the remaining candidates and degrade to a provider-only grid
//! estimate when no silo is reachable.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fedra_federation::{Federation, LocalMode, Request, Response, SiloId};
use fedra_geo::intersection_area;
use fedra_index::Aggregate;
use fedra_obs::{labeled, ObsContext};

use crate::algorithm::{drive_planned, AccuracyParams, FraAlgorithm, QueryPlan, RemotePlan};
use crate::helpers;
use crate::query::{FraError, FraQuery, QueryResult};
use crate::theory;

/// Records the LSR level an estimator committed to for one query — the
/// rescale factor 2^l is what Alg. 6 multiplies the sampled sums by.
fn record_level(obs: &ObsContext, level: usize) {
    if obs.is_enabled() {
        obs.inc(&labeled("fedra_lsr_level_total", "level", level));
        obs.set_gauge("fedra_lsr_rescale_factor", (1u64 << level.min(63)) as f64);
    }
}

/// How the sampled silo should execute its local query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
enum LocalQuery {
    /// Exact, via the silo's aggregate R-tree.
    #[default]
    Exact,
    /// Approximate, via the LSR-Forest (Alg. 6) with these parameters.
    Lsr(AccuracyParams),
}

impl LocalQuery {
    fn mode(&self, sum0_count: f64) -> LocalMode {
        match self {
            LocalQuery::Exact => LocalMode::Exact,
            LocalQuery::Lsr(p) => LocalMode::Lsr {
                epsilon: p.epsilon,
                delta: p.delta,
                sum0: sum0_count,
            },
        }
    }

    fn level(&self, sum0_count: f64) -> Option<usize> {
        match self {
            LocalQuery::Exact => None,
            LocalQuery::Lsr(p) => Some(theory::select_level(p.epsilon, p.delta, sum0_count)),
        }
    }

    /// Publishes the estimator's accuracy inputs (ε, δ, sum₀) once per
    /// planned query.
    fn record_accuracy(&self, obs: &ObsContext, sum0: &Aggregate) {
        if !obs.is_enabled() {
            return;
        }
        if let LocalQuery::Lsr(p) = self {
            obs.set_gauge("fedra_accuracy_epsilon", p.epsilon);
            obs.set_gauge("fedra_accuracy_delta", p.delta);
        }
        obs.observe("fedra_sum0_count", sum0.count.max(0.0) as u64);
    }
}

/// Shared sampling machinery: a seeded RNG plus the resample-on-failure
/// loop. `Mutex`-guarded so one estimator instance can serve the parallel
/// multi-query framework.
struct Sampler {
    rng: Mutex<StdRng>,
}

impl Sampler {
    fn new(seed: u64) -> Self {
        Self {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Returns candidate silos in a random visiting order (uniform first
    /// choice; the tail is the resampling fallback order).
    fn visiting_order(&self, candidates: &[SiloId]) -> Vec<SiloId> {
        let mut order = candidates.to_vec();
        order.shuffle(&mut *self.rng.lock());
        order
    }
}

/// IID-est (Alg. 2), optionally LSR-accelerated (Alg. 2 + Alg. 6).
pub struct IidEst {
    sampler: Sampler,
    local: LocalQuery,
    name: &'static str,
}

impl IidEst {
    /// Creates IID-est with exact local queries.
    pub fn new(seed: u64) -> Self {
        Self {
            sampler: Sampler::new(seed),
            local: LocalQuery::Exact,
            name: "IID-est",
        }
    }
}

/// IID-est + LSR (Alg. 2 with the Alg. 6 local query).
pub struct IidEstLsr;

impl IidEstLsr {
    /// Creates IID-est+LSR with the given accuracy parameters.
    ///
    /// Returns an [`IidEst`] configured for LSR local queries — the two
    /// variants share all estimator machinery and differ only in the
    /// silo-side execution mode, so one type serves both.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(seed: u64, params: AccuracyParams) -> IidEst {
        IidEst {
            sampler: Sampler::new(seed),
            local: LocalQuery::Lsr(params),
            name: "IID-est+LSR",
        }
    }
}

impl FraAlgorithm for IidEst {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Sequential execution is the shared plan/finish driver — the old
    /// hand-rolled sampling loop here was a duplicate of it.
    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        drive_planned(self, federation, query, obs)
    }

    fn supports_planning(&self) -> bool {
        true
    }

    fn plan_with(&self, federation: &Federation, query: &FraQuery, obs: &ObsContext) -> QueryPlan {
        let range = &query.range;
        let sum0 = helpers::sum0(federation, range);
        self.local.record_accuracy(obs, &sum0);
        if sum0.count == 0.0 {
            // No grid cell intersecting R holds any object: the answer is
            // exactly zero, no silo contact needed.
            return QueryPlan::Ready(Ok(QueryResult::from_aggregate(Aggregate::ZERO, query.func)));
        }
        let candidates = helpers::candidate_silos(federation, range);
        // One visiting-order draw per query, whichever engine drives the
        // plan — this is what keeps batched and sequential runs
        // seed-equivalent.
        let order = self.sampler.visiting_order(&candidates);
        if order.is_empty() {
            if federation.failed_silos().is_empty() {
                // Healthy federation, but no silo has data in the range's
                // cells — contradicts sum0 > 0, so this cannot happen;
                // keep a defensive zero result rather than a panic in
                // release use.
                return QueryPlan::Ready(Ok(QueryResult::from_aggregate(
                    Aggregate::ZERO,
                    query.func,
                )));
            }
            // Eligibility was emptied by failure flags: degrade to the
            // provider-only grid estimate rather than an error —
            // availability over precision.
            let fallback = helpers::grid_only_estimate(federation, range);
            return QueryPlan::Ready(Ok(QueryResult::from_aggregate(fallback, query.func)));
        }
        QueryPlan::SingleSilo(RemotePlan {
            order,
            request: Request::Aggregate {
                range: *range,
                mode: self.local.mode(sum0.count),
            },
        })
    }

    fn finish_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        silo: SiloId,
        response: Response,
        rounds: u64,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let range = &query.range;
        match response {
            Response::Agg(res_k) => {
                let sum0 = helpers::sum0(federation, range);
                let sum_k = helpers::sum_k(federation, silo, range);
                let fallback = helpers::grid_only_estimate(federation, range);
                let estimate = helpers::ratio_scale(&sum0, &res_k, &sum_k, &fallback);
                let mut result = QueryResult::from_aggregate(estimate, query.func)
                    .with_silo(silo)
                    .with_rounds(rounds);
                if let Some(level) = self.local.level(sum0.count) {
                    result = result.with_level(level);
                    record_level(obs, level);
                }
                Ok(result)
            }
            _ => Err(FraError::ProtocolViolation {
                silo,
                expected: "Agg",
            }),
        }
    }
}

/// NonIID-est (Alg. 3), optionally LSR-accelerated (Alg. 3 + Alg. 6).
pub struct NonIidEst {
    sampler: Sampler,
    local: LocalQuery,
    name: &'static str,
}

impl NonIidEst {
    /// Creates NonIID-est with exact local queries.
    pub fn new(seed: u64) -> Self {
        Self {
            sampler: Sampler::new(seed),
            local: LocalQuery::Exact,
            name: "NonIID-est",
        }
    }
}

/// NonIID-est + LSR (Alg. 3 with the Alg. 6 local query).
pub struct NonIidEstLsr;

impl NonIidEstLsr {
    /// Creates NonIID-est+LSR with the given accuracy parameters.
    ///
    /// Returns a [`NonIidEst`] configured for LSR local queries (see
    /// [`IidEstLsr::new`] for the rationale).
    #[allow(clippy::new_ret_no_self)]
    pub fn new(seed: u64, params: AccuracyParams) -> NonIidEst {
        NonIidEst {
            sampler: Sampler::new(seed),
            local: LocalQuery::Lsr(params),
            name: "NonIID-est+LSR",
        }
    }
}

impl FraAlgorithm for NonIidEst {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Sequential execution is the shared plan/finish driver — the old
    /// hand-rolled sampling loop here was a duplicate of it.
    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        drive_planned(self, federation, query, obs)
    }

    fn supports_planning(&self) -> bool {
        true
    }

    fn plan_with(&self, federation: &Federation, query: &FraQuery, obs: &ObsContext) -> QueryPlan {
        let range = &query.range;
        let grid = federation.merged_grid();
        let spec = grid.spec();
        let classification = spec.classify(range);
        if classification.is_empty() {
            return QueryPlan::Ready(Ok(QueryResult::from_aggregate(Aggregate::ZERO, query.func)));
        }
        // Covered cells: exact contribution straight from g₀
        // (Sec. 4.2.2 remark) — no estimation, no communication.
        let covered = grid.aggregate_cells(classification.covered.iter().copied());
        if classification.boundary.is_empty() {
            // The range is exactly a union of grid cells.
            return QueryPlan::Ready(Ok(QueryResult::from_aggregate(covered, query.func)));
        }
        let sum0_count = helpers::rough_count(federation, range);
        if obs.is_enabled() {
            let rough = Aggregate {
                count: sum0_count,
                ..Aggregate::ZERO
            };
            self.local.record_accuracy(obs, &rough);
            obs.observe("fedra_boundary_cells", classification.boundary.len() as u64);
        }
        let candidates = helpers::candidate_silos(federation, range);
        // One visiting-order draw per query, whichever engine drives the
        // plan — this is what keeps batched and sequential runs
        // seed-equivalent.
        let order = self.sampler.visiting_order(&candidates);
        if order.is_empty() {
            if federation.failed_silos().is_empty() {
                return QueryPlan::Ready(Ok(QueryResult::from_aggregate(covered, query.func)));
            }
            let fallback = helpers::grid_only_estimate(federation, range);
            return QueryPlan::Ready(Ok(QueryResult::from_aggregate(fallback, query.func)));
        }
        QueryPlan::SingleSilo(RemotePlan {
            order,
            request: Request::CellContributions {
                range: *range,
                cells: classification.boundary,
                mode: self.local.mode(sum0_count),
            },
        })
    }

    fn finish_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        silo: SiloId,
        response: Response,
        rounds: u64,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let range = &query.range;
        let grid = federation.merged_grid();
        let spec = grid.spec();
        // The classification is a pure function of the grid spec and the
        // range, so recomputing it here reproduces the plan's cell list.
        let classification = spec.classify(range);
        let covered = grid.aggregate_cells(classification.covered.iter().copied());
        match response {
            Response::AggVec(contributions) => {
                if contributions.len() != classification.boundary.len() {
                    return Err(FraError::ProtocolViolation {
                        silo,
                        expected: "one aggregate per requested cell",
                    });
                }
                let sum0_count = helpers::rough_count(federation, range);
                let silo_grid = federation.silo_grid(silo);
                let mut estimate = covered;
                for (cell, res_i) in classification.boundary.iter().zip(&contributions) {
                    let g0_i = grid.cell(*cell);
                    let gk_i = silo_grid.cell(*cell);
                    let rect = spec.cell_rect_of(*cell);
                    let frac = intersection_area(range, &rect) / rect.area();
                    let fallback = g0_i.scale(frac);
                    estimate.merge_in(&helpers::ratio_scale(g0_i, res_i, gk_i, &fallback));
                }
                let mut result = QueryResult::from_aggregate(estimate, query.func)
                    .with_silo(silo)
                    .with_rounds(rounds);
                if let Some(level) = self.local.level(sum0_count) {
                    result = result.with_level(level);
                    record_level(obs, level);
                }
                Ok(result)
            }
            _ => Err(FraError::ProtocolViolation {
                silo,
                expected: "AggVec",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exact;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::AggFunc;
    use rand::Rng;

    fn bounds() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    /// IID partitions: every silo draws from the same mixture.
    fn iid_partitions(m: usize, per_silo: usize, seed: u64) -> Vec<Vec<SpatialObject>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                (0..per_silo)
                    .map(|_| {
                        // Two clusters + background, identical across silos.
                        let (x, y): (f64, f64) = match rng.random_range(0..10) {
                            0..=4 => (
                                30.0 + rng.random_range(-8.0..8.0),
                                30.0 + rng.random_range(-8.0..8.0),
                            ),
                            5..=7 => (
                                70.0 + rng.random_range(-10.0..10.0),
                                60.0 + rng.random_range(-10.0..10.0),
                            ),
                            _ => (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
                        };
                        SpatialObject::at(
                            x.clamp(0.0, 100.0),
                            y.clamp(0.0, 100.0),
                            rng.random_range(1.0..5.0),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// Non-IID partitions: silo k concentrates in its own corner but keeps
    /// a city-wide background (overlapping coverage, skewed focus).
    fn noniid_partitions(m: usize, per_silo: usize, seed: u64) -> Vec<Vec<SpatialObject>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let foci = [
            (20.0, 20.0),
            (80.0, 20.0),
            (20.0, 80.0),
            (80.0, 80.0),
            (50.0, 50.0),
        ];
        (0..m)
            .map(|k| {
                let (fx, fy) = foci[k % foci.len()];
                (0..per_silo)
                    .map(|_| {
                        let (x, y): (f64, f64) = if rng.random_range(0..10) < 7 {
                            (
                                fx + rng.random_range(-12.0..12.0),
                                fy + rng.random_range(-12.0..12.0),
                            )
                        } else {
                            (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0))
                        };
                        SpatialObject::at(
                            x.clamp(0.0, 100.0),
                            y.clamp(0.0, 100.0),
                            rng.random_range(1.0..3.0),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn build(partitions: Vec<Vec<SpatialObject>>, cell_len: f64) -> Federation {
        FederationBuilder::new(bounds())
            .grid_cell_len(cell_len)
            .histogram_config(MinSkewConfig {
                resolution: 32,
                budget: 64,
            })
            .build(partitions)
    }

    fn mean_rel_error(alg: &dyn FraAlgorithm, fed: &Federation, queries: &[FraQuery]) -> f64 {
        let exact = Exact::new();
        let mut total = 0.0;
        for q in queries {
            let truth = exact.execute(fed, q).value;
            let est = alg.execute(fed, q);
            total += est.relative_error(truth);
        }
        total / queries.len() as f64
    }

    fn test_queries(seed: u64, n: usize, radius: f64) -> Vec<FraQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                FraQuery::circle(
                    Point::new(rng.random_range(15.0..85.0), rng.random_range(15.0..85.0)),
                    radius,
                    AggFunc::Count,
                )
            })
            .collect()
    }

    #[test]
    fn iid_est_is_accurate_on_iid_data() {
        let fed = build(iid_partitions(4, 4000, 1), 5.0);
        let queries = test_queries(2, 12, 15.0);
        let mre = mean_rel_error(&IidEst::new(3), &fed, &queries);
        assert!(mre < 0.12, "IID-est MRE {mre}");
    }

    #[test]
    fn noniid_est_is_accurate_on_noniid_data() {
        let fed = build(noniid_partitions(4, 4000, 4), 5.0);
        let queries = test_queries(5, 12, 15.0);
        let mre_noniid = mean_rel_error(&NonIidEst::new(6), &fed, &queries);
        assert!(mre_noniid < 0.10, "NonIID-est MRE {mre_noniid}");
    }

    #[test]
    fn noniid_beats_iid_on_skewed_partitions() {
        let fed = build(noniid_partitions(4, 5000, 7), 5.0);
        let queries = test_queries(8, 16, 12.0);
        let mre_iid = mean_rel_error(&IidEst::new(9), &fed, &queries);
        let mre_noniid = mean_rel_error(&NonIidEst::new(10), &fed, &queries);
        assert!(
            mre_noniid < mre_iid,
            "NonIID-est ({mre_noniid}) should beat IID-est ({mre_iid}) on Non-IID data"
        );
    }

    #[test]
    fn lsr_variants_stay_close_to_their_bases() {
        let fed = build(iid_partitions(4, 5000, 11), 5.0);
        let queries = test_queries(12, 10, 18.0);
        let params = AccuracyParams::default();
        let mre_iid_lsr = mean_rel_error(&IidEstLsr::new(13, params), &fed, &queries);
        let mre_noniid_lsr = mean_rel_error(&NonIidEstLsr::new(14, params), &fed, &queries);
        assert!(mre_iid_lsr < 0.2, "IID-est+LSR MRE {mre_iid_lsr}");
        assert!(mre_noniid_lsr < 0.15, "NonIID-est+LSR MRE {mre_noniid_lsr}");
    }

    #[test]
    fn single_silo_communication() {
        let fed = build(iid_partitions(5, 1000, 15), 5.0);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 12.0, AggFunc::Count);
        fed.reset_query_comm();
        let r = IidEst::new(16).execute(&fed, &q);
        assert_eq!(r.rounds, 1);
        assert_eq!(fed.query_comm().rounds, 1);
        assert!(r.sampled_silo.is_some());

        fed.reset_query_comm();
        let r = NonIidEst::new(17).execute(&fed, &q);
        assert_eq!(r.rounds, 1);
        let comm = fed.query_comm();
        assert_eq!(comm.rounds, 1);
        // NonIID ships per-boundary-cell vectors: more bytes than IID's
        // single aggregate but far fewer than m round trips.
        assert!(comm.total_bytes() > 0);
    }

    #[test]
    fn noniid_comm_grows_with_boundary_not_grid() {
        let fed = build(iid_partitions(3, 2000, 18), 2.0); // fine grid: 50×50 cells
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        fed.reset_query_comm();
        NonIidEst::new(19).execute(&fed, &q);
        let bytes = fed.query_comm().total_bytes();
        // Boundary of a r=10 circle on a 2 km grid ≈ 2πr/L ≈ 31 cells.
        // Each costs 4 bytes up + 24 bytes down ≈ 900 bytes, far below the
        // 2500-cell full grid (~60 KB).
        assert!(bytes < 4000, "NonIID comm {bytes} bytes is not O(√|g0|)");
    }

    #[test]
    fn estimators_handle_failed_silos_by_resampling() {
        let fed = build(iid_partitions(4, 2000, 20), 5.0);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 15.0, AggFunc::Count);
        let exact = Exact::new().execute(&fed, &q).value;
        // Fail all but silo 3: estimators must still answer via resampling.
        for k in 0..3 {
            fed.set_silo_failed(k, true);
        }
        let r = IidEst::new(21).execute(&fed, &q);
        assert_eq!(r.sampled_silo, Some(3));
        assert!(r.relative_error(exact) < 0.5);
        let r = NonIidEst::new(22).execute(&fed, &q);
        assert_eq!(r.sampled_silo, Some(3));
        for k in 0..3 {
            fed.set_silo_failed(k, false);
        }
    }

    #[test]
    fn estimators_degrade_to_grid_when_all_silos_fail() {
        let fed = build(iid_partitions(3, 3000, 23), 5.0);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 15.0, AggFunc::Count);
        let exact = Exact::new().execute(&fed, &q).value;
        for k in 0..3 {
            fed.set_silo_failed(k, true);
        }
        let r = IidEst::new(24).execute(&fed, &q);
        assert!(r.sampled_silo.is_none());
        assert!(r.value > 0.0);
        assert!(
            r.relative_error(exact) < 0.5,
            "grid-only degraded answer too far off"
        );
        let r = NonIidEst::new(25).execute(&fed, &q);
        assert!(r.value > 0.0);
        for k in 0..3 {
            fed.set_silo_failed(k, false);
        }
    }

    #[test]
    fn empty_ranges_are_zero_without_communication() {
        let fed = build(iid_partitions(3, 500, 26), 5.0);
        let q = FraQuery::circle(Point::new(-300.0, -300.0), 5.0, AggFunc::Sum);
        fed.reset_query_comm();
        assert_eq!(IidEst::new(27).execute(&fed, &q).value, 0.0);
        assert_eq!(NonIidEst::new(28).execute(&fed, &q).value, 0.0);
        assert_eq!(fed.query_comm().rounds, 0);
    }

    #[test]
    fn cell_aligned_rect_queries_are_exact_for_noniid() {
        // A rect query on cell boundaries: the interior cells are covered
        // (answered exactly from g₀); the only "boundary" cells are the
        // zero-width strips the closed query edge shares with the next
        // cell column/row, which hold no data in a continuous workload —
        // so NonIID-est reproduces the exact answer.
        let fed = build(noniid_partitions(3, 2000, 29), 10.0);
        let q = FraQuery::rect(
            Point::new(20.0, 20.0),
            Point::new(60.0, 70.0),
            AggFunc::Count,
        );
        let exact = Exact::new().execute(&fed, &q).value;
        fed.reset_query_comm();
        let r = NonIidEst::new(30).execute(&fed, &q);
        assert!(fed.query_comm().rounds <= 1);
        assert!((r.value - exact).abs() < 1e-9, "{} vs {exact}", r.value);
    }

    #[test]
    fn avg_and_stdev_ride_on_the_triple() {
        let fed = build(iid_partitions(4, 5000, 31), 5.0);
        let exact = Exact::new();
        for func in [AggFunc::Avg, AggFunc::Stdev] {
            let q = FraQuery::circle(Point::new(40.0, 40.0), 20.0, func);
            let truth = exact.execute(&fed, &q).value;
            let est = NonIidEst::new(32).execute(&fed, &q);
            let rel = est.relative_error(truth);
            assert!(rel < 0.2, "{func} rel error {rel}");
        }
    }

    #[test]
    fn iid_estimator_is_unbiased_over_many_seeds() {
        // E[ans'] = E[ans] (Theorem 1): average IID-est over many RNG
        // seeds; the mean must approach the exact answer much closer than
        // any single estimate's deviation.
        let fed = build(iid_partitions(5, 3000, 33), 5.0);
        let q = FraQuery::circle(Point::new(35.0, 35.0), 15.0, AggFunc::Count);
        let exact = Exact::new().execute(&fed, &q).value;
        let trials = 200;
        let mut sum = 0.0;
        for t in 0..trials {
            sum += IidEst::new(1000 + t).execute(&fed, &q).value;
        }
        let mean = sum / trials as f64;
        let rel = (mean - exact).abs() / exact;
        assert!(
            rel < 0.03,
            "IID-est mean {mean} vs exact {exact} (rel {rel})"
        );
    }

    #[test]
    fn noniid_estimator_is_unbiased_over_many_seeds() {
        // Theorem 3's unbiasedness is over the data-generating process
        // *under the locality assumption*: objects within one grid cell
        // follow the same distribution at every silo. Generate data that
        // satisfies it exactly — silo-specific weights over cells, uniform
        // placement within a cell — and average the est/exact ratio across
        // freshly generated federations.
        let cell = 5.0;
        let piecewise_uniform = |m: usize, per_silo: usize, seed: u64| -> Vec<Vec<SpatialObject>> {
            let mut rng = StdRng::seed_from_u64(seed);
            let n_cells = 20u32; // 100 / cell
            (0..m)
                .map(|k| {
                    // Distinct per-silo skew: silo k over-weights a band of
                    // columns, so cell weights genuinely differ (Non-IID).
                    let weights: Vec<f64> = (0..n_cells * n_cells)
                        .map(|id| {
                            let ix = id % n_cells;
                            if (ix as usize / 4) % m == k {
                                5.0
                            } else {
                                1.0
                            }
                        })
                        .collect();
                    let total: f64 = weights.iter().sum();
                    (0..per_silo)
                        .map(|_| {
                            let mut pick = rng.random_range(0.0..total);
                            let mut id = 0;
                            for (i, w) in weights.iter().enumerate() {
                                if pick < *w {
                                    id = i as u32;
                                    break;
                                }
                                pick -= w;
                            }
                            let (ix, iy) = (id % n_cells, id / n_cells);
                            SpatialObject::at(
                                ix as f64 * cell + rng.random_range(0.0..cell),
                                iy as f64 * cell + rng.random_range(0.0..cell),
                                rng.random_range(1.0..3.0),
                            )
                        })
                        .collect()
                })
                .collect()
        };
        let trials = 30;
        let mut ratio_sum = 0.0;
        for t in 0..trials {
            let fed = build(piecewise_uniform(4, 1500, 100 + t), cell);
            let q = FraQuery::circle(Point::new(50.0, 50.0), 15.0, AggFunc::Count);
            let exact = Exact::new().execute(&fed, &q).value;
            assert!(exact > 0.0);
            ratio_sum += NonIidEst::new(2000 + t).execute(&fed, &q).value / exact;
        }
        let mean_ratio = ratio_sum / trials as f64;
        assert!(
            (mean_ratio - 1.0).abs() < 0.04,
            "NonIID-est mean ratio {mean_ratio} drifts from 1"
        );
    }
}
