//! FRA queries and their results.

use serde::{Deserialize, Serialize};

use fedra_federation::SiloId;
use fedra_geo::{Point, Range};
use fedra_index::{AggFunc, Aggregate};

/// A Federated Range Aggregation query (Definition 2): a range `R` plus an
/// aggregation function `F`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FraQuery {
    /// The spatial range (circular or rectangular).
    pub range: Range,
    /// The aggregation function.
    pub func: AggFunc,
}

impl FraQuery {
    /// Creates a query over an arbitrary range.
    pub fn new(range: Range, func: AggFunc) -> Self {
        Self { range, func }
    }

    /// A circular query: "aggregate within `radius` of `center`".
    pub fn circle(center: Point, radius: f64, func: AggFunc) -> Self {
        Self::new(Range::circle(center, radius), func)
    }

    /// A rectangular query.
    pub fn rect(a: Point, b: Point, func: AggFunc) -> Self {
        Self::new(Range::rect(a, b), func)
    }
}

impl std::fmt::Display for FraQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.func, self.range)
    }
}

/// How much of the federation actually backed a degraded-mode answer
/// (DESIGN.md §5i).
///
/// Attached to a [`QueryResult`] only when the federation runs under
/// `DegradePolicy::Partial` and the answer was assembled without the full
/// silo complement — the coverage-honest alternative to failing the query
/// outright. `epsilon` is the inflated bound of
/// [`crate::theory::degraded_epsilon`], anchored to the `sum₀` grid
/// envelope like every Sec. 6 guarantee: the degraded answer's absolute
/// error against the true (all-silo) answer is at most `epsilon · sum₀(R)`
/// (deterministically for exact fan-outs; up to the base guarantee's own
/// δ when the backed share is sampled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coverage {
    /// Silos whose live answers back this result.
    pub responding: usize,
    /// Total silos in the federation.
    pub total: usize,
    /// Fraction of the in-range mass (from the per-silo grids) that is
    /// backed by live answers rather than grid fill-in, in `[0, 1]`.
    pub mass_fraction: f64,
    /// The inflated relative-error bound this answer honestly carries.
    pub epsilon: f64,
}

/// The answer to an FRA query, with execution metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryResult {
    /// The (possibly approximate) value of `F` over the range.
    pub value: f64,
    /// The full `(count, sum, sum_sqr)` triple the value was derived from.
    /// AVG/STDEV queries get all three in one round, per the Sec. 7
    /// extension.
    pub aggregate: Aggregate,
    /// The silo that served the partial answer (`None` for algorithms
    /// that fan out to every silo or answer purely from provider state).
    pub sampled_silo: Option<SiloId>,
    /// The LSR level used for the local query (`None` without LSR).
    pub lsr_level: Option<usize>,
    /// Request/response rounds this query consumed.
    pub rounds: u64,
    /// Degraded-mode coverage (`None` for a full-federation answer).
    pub coverage: Option<Coverage>,
}

impl QueryResult {
    /// Builds a result from an aggregate triple for the requested function.
    pub fn from_aggregate(aggregate: Aggregate, func: AggFunc) -> Self {
        Self {
            value: aggregate.value(func),
            aggregate,
            sampled_silo: None,
            lsr_level: None,
            rounds: 0,
            coverage: None,
        }
    }

    /// Attaches the sampled silo.
    pub fn with_silo(mut self, silo: SiloId) -> Self {
        self.sampled_silo = Some(silo);
        self
    }

    /// Attaches the LSR level.
    pub fn with_level(mut self, level: usize) -> Self {
        self.lsr_level = Some(level);
        self
    }

    /// Attaches the round count.
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.rounds = rounds;
        self
    }

    /// Attaches the degraded-mode coverage record.
    pub fn with_coverage(mut self, coverage: Coverage) -> Self {
        self.coverage = Some(coverage);
        self
    }

    /// Relative error against an exact reference value (the paper's RE,
    /// Eq. 2). Defined as 0 when both are zero and 1 when only the
    /// reference is zero.
    pub fn relative_error(&self, exact: f64) -> f64 {
        if exact == 0.0 {
            if self.value == 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            (self.value - exact).abs() / exact.abs()
        }
    }
}

/// Errors from FRA query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FraError {
    /// Every candidate silo refused or was unreachable.
    ///
    /// Carries the full per-silo error trail (in the order attempts were
    /// made — the same silo may appear more than once across retries), so
    /// a timeout storm is distinguishable from a crash storm.
    AllSilosUnavailable {
        /// Every transport error seen while trying to serve the query.
        errors: Vec<(SiloId, fedra_federation::TransportError)>,
    },
    /// A fan-out algorithm (EXACT/OPTA) lost a required silo.
    SiloFailed(fedra_federation::TransportError),
    /// A silo answered with the wrong response shape.
    ProtocolViolation {
        /// Which silo.
        silo: SiloId,
        /// What was expected.
        expected: &'static str,
    },
    /// The engine itself failed (a panicked batch worker, a broken
    /// scheduling invariant) — the query was never answered.
    Internal {
        /// What went wrong.
        message: String,
    },
    /// The serving layer gave the query up before an answer: its admission
    /// class's deadline (measured from *submission*) expired in queue, in
    /// flight, or at the silo — which sheds expired frames for the cost of
    /// one byte-counted round trip (DESIGN.md §5g).
    Shed {
        /// The admission class the query was submitted under.
        class: String,
    },
}

impl std::fmt::Display for FraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FraError::AllSilosUnavailable { errors } => {
                if errors.is_empty() {
                    return write!(f, "no silo could serve the query");
                }
                // Summarize by failure kind so a timeout storm reads
                // differently from a crash storm at a glance.
                let mut kinds: Vec<(&'static str, usize)> = Vec::new();
                for (_, e) in errors {
                    match kinds.iter_mut().find(|(k, _)| *k == e.kind()) {
                        Some((_, n)) => *n += 1,
                        None => kinds.push((e.kind(), 1)),
                    }
                }
                write!(
                    f,
                    "no silo could serve the query ({} attempts: ",
                    errors.len()
                )?;
                for (i, (kind, n)) in kinds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} {kind}")?;
                }
                let (silo, last) = &errors[errors.len() - 1];
                write!(f, "; last: silo {silo}: {last})")
            }
            FraError::SiloFailed(e) => write!(f, "required silo failed: {e}"),
            FraError::ProtocolViolation { silo, expected } => {
                write!(f, "silo {silo} violated the protocol (expected {expected})")
            }
            FraError::Internal { message } => write!(f, "internal engine error: {message}"),
            FraError::Shed { class } => {
                write!(f, "query shed by admission control (class `{class}`)")
            }
        }
    }
}

impl std::error::Error for FraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = FraQuery::circle(Point::new(4.0, 6.0), 3.0, AggFunc::Sum);
        assert!(matches!(q.range, Range::Circle(_)));
        assert_eq!(q.func, AggFunc::Sum);
        let q = FraQuery::rect(Point::new(0.0, 0.0), Point::new(1.0, 1.0), AggFunc::Count);
        assert!(matches!(q.range, Range::Rect(_)));
        assert_eq!(q.to_string(), "COUNT([(0, 0) .. (1, 1)])");
    }

    #[test]
    fn result_from_aggregate_derives_value() {
        let agg = Aggregate {
            count: 4.0,
            sum: 10.0,
            sum_sqr: 30.0,
        };
        assert_eq!(QueryResult::from_aggregate(agg, AggFunc::Count).value, 4.0);
        assert_eq!(QueryResult::from_aggregate(agg, AggFunc::Sum).value, 10.0);
        assert_eq!(QueryResult::from_aggregate(agg, AggFunc::Avg).value, 2.5);
    }

    #[test]
    fn relative_error_edge_cases() {
        let r = QueryResult::from_aggregate(Aggregate::ZERO, AggFunc::Count);
        assert_eq!(r.relative_error(0.0), 0.0);
        assert_eq!(r.relative_error(10.0), 1.0);
        let r = QueryResult::from_aggregate(
            Aggregate {
                count: 11.0,
                sum: 0.0,
                sum_sqr: 0.0,
            },
            AggFunc::Count,
        );
        assert!((r.relative_error(10.0) - 0.1).abs() < 1e-12);
        let r2 = QueryResult::from_aggregate(
            Aggregate {
                count: 5.0,
                sum: 0.0,
                sum_sqr: 0.0,
            },
            AggFunc::Count,
        );
        assert_eq!(r2.relative_error(0.0), 1.0);
    }

    #[test]
    fn builder_metadata() {
        let r = QueryResult::from_aggregate(Aggregate::ZERO, AggFunc::Count)
            .with_silo(3)
            .with_level(2)
            .with_rounds(1);
        assert_eq!(r.sampled_silo, Some(3));
        assert_eq!(r.lsr_level, Some(2));
        assert_eq!(r.rounds, 1);
        assert_eq!(r.coverage, None);
        let c = Coverage {
            responding: 2,
            total: 3,
            mass_fraction: 0.75,
            epsilon: 0.25,
        };
        assert_eq!(r.with_coverage(c).coverage, Some(c));
    }

    #[test]
    fn errors_display() {
        let e = FraError::AllSilosUnavailable { errors: vec![] };
        assert!(e.to_string().contains("no silo"));
        let e = FraError::ProtocolViolation {
            silo: 2,
            expected: "Agg",
        };
        assert!(e.to_string().contains("silo 2"));
    }

    #[test]
    fn all_silos_unavailable_summarizes_error_kinds() {
        use fedra_federation::TransportError;
        let e = FraError::AllSilosUnavailable {
            errors: vec![
                (0, TransportError::DeadlineExceeded { silo: 0 }),
                (1, TransportError::DeadlineExceeded { silo: 1 }),
                (2, TransportError::Disconnected { silo: 2 }),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("3 attempts"), "{s}");
        assert!(s.contains("2 deadline"), "{s}");
        assert!(s.contains("1 disconnected"), "{s}");
        assert!(s.contains("last: silo 2"), "{s}");
    }
}
