//! Multi-silo sampling: the natural extension between the paper's
//! single-silo estimators (k = 1) and the EXACT fan-out (k = m).
//!
//! [`MultiSiloEst`] samples `k` *distinct* silos, obtains each one's
//! Non-IID-style per-boundary-cell contributions in parallel, and uses the
//! *pooled* statistics: for boundary cell `i` the in-range fraction is
//! estimated from the union of the sampled silos' data in that cell,
//! `Σ_k res_i^k / Σ_k g_k[i]`, then re-scaled by `g₀[i]`. Pooling (rather
//! than averaging per-silo ratios) keeps the estimator unbiased under the
//! locality assumption while cutting its variance roughly by the pooled
//! sample-size factor; communication grows linearly in `k`.
//!
//! This is an ablation/extension knob, not part of the paper's evaluated
//! algorithms: `k = 1` recovers NonIID-est exactly (modulo RNG), and the
//! `ablations` bench sweeps `k` to show the accuracy/communication
//! trade-off.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fedra_federation::{Federation, LocalMode, Request, Response, SiloId};
use fedra_geo::intersection_area;
use fedra_index::Aggregate;
use fedra_obs::{labeled, ObsContext, Span};

use crate::algorithm::FraAlgorithm;
use crate::helpers;
use crate::query::{FraError, FraQuery, QueryResult};

/// Non-IID estimation over `k` pooled silos.
pub struct MultiSiloEst {
    rng: Mutex<StdRng>,
    k: usize,
}

impl MultiSiloEst {
    /// Creates the estimator.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(seed: u64, k: usize) -> Self {
        assert!(k >= 1, "need at least one sampled silo");
        Self {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            k,
        }
    }

    /// The number of silos pooled per query.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl FraAlgorithm for MultiSiloEst {
    fn name(&self) -> &'static str {
        "MultiSilo-est"
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let trace = obs.start_trace("query", self.name());
        let outcome = self.run(federation, query, obs, &trace);
        if let Ok(result) = &outcome {
            trace.attr("rounds", result.rounds);
        }
        obs.finish_trace(&trace);
        outcome
    }
}

impl MultiSiloEst {
    fn run(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
        trace: &fedra_obs::TraceHandle,
    ) -> Result<QueryResult, FraError> {
        let range = &query.range;
        let (classification, covered, grid_spec);
        let grid = federation.merged_grid();
        {
            let _plan_span = Span::enter(trace, "plan");
            grid_spec = grid.spec();
            classification = grid_spec.classify(range);
            if classification.is_empty() {
                return Ok(QueryResult::from_aggregate(Aggregate::ZERO, query.func));
            }
            covered = grid.aggregate_cells(classification.covered.iter().copied());
        }
        if classification.boundary.is_empty() {
            return Ok(QueryResult::from_aggregate(covered, query.func));
        }

        // Visit candidates in random order, pooling the first k that
        // answer; extra candidates double as failover.
        let mut order = helpers::candidate_silos(federation, range);
        order.shuffle(&mut *self.rng.lock());
        let request = Request::CellContributions {
            range: *range,
            cells: classification.boundary.clone(),
            mode: LocalMode::Exact,
        };
        let mut pooled: Vec<Aggregate> = vec![Aggregate::ZERO; classification.boundary.len()];
        let mut pooled_silos: Vec<SiloId> = Vec::new();
        let mut rounds = 0;
        {
            let _remote_span = Span::enter(trace, "remote");
            for k in order {
                if pooled_silos.len() == self.k {
                    break;
                }
                rounds += 1;
                if obs.is_enabled() {
                    obs.inc(&labeled("fedra_silo_requests_total", "silo", k));
                }
                match federation.call(k, &request) {
                    Ok(Response::AggVec(contributions)) => {
                        if contributions.len() != pooled.len() {
                            return Err(FraError::ProtocolViolation {
                                silo: k,
                                expected: "one aggregate per requested cell",
                            });
                        }
                        for (acc, c) in pooled.iter_mut().zip(&contributions) {
                            acc.merge_in(c);
                        }
                        pooled_silos.push(k);
                    }
                    Ok(_) => {
                        return Err(FraError::ProtocolViolation {
                            silo: k,
                            expected: "AggVec",
                        })
                    }
                    Err(_) => {
                        obs.inc("fedra_resamples_total");
                    }
                }
            }
        }
        if pooled_silos.is_empty() {
            // Same degradation ladder as the single-silo estimators.
            obs.inc("fedra_degraded_total");
            let fallback = helpers::grid_only_estimate(federation, range);
            return Ok(QueryResult::from_aggregate(fallback, query.func).with_rounds(rounds));
        }
        if obs.is_enabled() {
            for &s in &pooled_silos {
                obs.inc(&labeled("fedra_sampled_silo_total", "silo", s));
            }
        }

        let _finish_span = Span::enter(trace, "finish");
        let mut estimate = covered;
        for (idx, cell) in classification.boundary.iter().enumerate() {
            let g0_i = grid.cell(*cell);
            // Pooled denominator: the sampled silos' combined cell totals.
            let mut gk_pooled = Aggregate::ZERO;
            for &s in &pooled_silos {
                gk_pooled.merge_in(federation.silo_grid(s).cell(*cell));
            }
            let rect = grid_spec.cell_rect_of(*cell);
            let frac = intersection_area(range, &rect) / rect.area();
            let fallback = g0_i.scale(frac);
            estimate.merge_in(&helpers::ratio_scale(
                g0_i,
                &pooled[idx],
                &gk_pooled,
                &fallback,
            ));
        }
        Ok(QueryResult::from_aggregate(estimate, query.func)
            .with_silo(pooled_silos[0])
            .with_rounds(rounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exact;
    use crate::sampling::NonIidEst;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::AggFunc;
    use rand::Rng;

    fn federation(m: usize, per_silo: usize, seed: u64) -> Federation {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut rng = StdRng::seed_from_u64(seed);
        let foci = [(25.0, 25.0), (75.0, 25.0), (25.0, 75.0), (75.0, 75.0)];
        let partitions: Vec<Vec<SpatialObject>> = (0..m)
            .map(|k| {
                let (fx, fy) = foci[k % foci.len()];
                (0..per_silo)
                    .map(|_| {
                        let (x, y): (f64, f64) = if rng.random_range(0..10) < 6 {
                            (
                                fx + rng.random_range(-15.0..15.0),
                                fy + rng.random_range(-15.0..15.0),
                            )
                        } else {
                            (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0))
                        };
                        SpatialObject::at(x.clamp(0.0, 100.0), y.clamp(0.0, 100.0), 1.0)
                    })
                    .collect()
            })
            .collect();
        FederationBuilder::new(bounds)
            .grid_cell_len(5.0)
            .histogram_config(MinSkewConfig {
                resolution: 16,
                budget: 16,
            })
            .build(partitions)
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_k_rejected() {
        MultiSiloEst::new(0, 0);
    }

    #[test]
    fn k_equals_m_is_nearly_exact() {
        // Pooling every silo leaves only within-cell spatial variation —
        // boundary cells estimated from *all* the data in them.
        let fed = federation(4, 2000, 1);
        let alg = MultiSiloEst::new(2, 4);
        let exact = Exact::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let q = FraQuery::circle(
                Point::new(rng.random_range(20.0..80.0), rng.random_range(20.0..80.0)),
                12.0,
                AggFunc::Count,
            );
            let t = exact.execute(&fed, &q).value;
            if t < 50.0 {
                continue;
            }
            let e = alg.execute(&fed, &q).value;
            let rel = (e - t).abs() / t;
            assert!(rel < 0.08, "k=m pooled error {rel} at {q}");
        }
    }

    #[test]
    fn larger_k_reduces_error_on_average() {
        let fed = federation(4, 3000, 4);
        let exact = Exact::new();
        let mut rng = StdRng::seed_from_u64(5);
        let queries: Vec<FraQuery> = (0..25)
            .map(|_| {
                FraQuery::circle(
                    Point::new(rng.random_range(20.0..80.0), rng.random_range(20.0..80.0)),
                    10.0,
                    AggFunc::Count,
                )
            })
            .collect();
        let truth: Vec<f64> = queries
            .iter()
            .map(|q| exact.execute(&fed, q).value)
            .collect();
        let mre = |k: usize, seed: u64| -> f64 {
            let alg = MultiSiloEst::new(seed, k);
            queries
                .iter()
                .zip(&truth)
                .filter(|(_, &t)| t > 0.0)
                .map(|(q, &t)| (alg.execute(&fed, q).value - t).abs() / t)
                .sum::<f64>()
                / queries.len() as f64
        };
        let e1 = mre(1, 6);
        let e4 = mre(4, 7);
        assert!(
            e4 < e1,
            "pooling all silos ({e4}) must beat single-silo ({e1})"
        );
    }

    #[test]
    fn k_one_matches_noniid_communication_profile() {
        let fed = federation(4, 1000, 8);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        fed.reset_query_comm();
        MultiSiloEst::new(9, 1).execute(&fed, &q);
        let multi = fed.query_comm();
        fed.reset_query_comm();
        NonIidEst::new(10).execute(&fed, &q);
        let single = fed.query_comm();
        assert_eq!(multi.rounds, single.rounds);
        assert_eq!(multi.total_bytes(), single.total_bytes());
    }

    #[test]
    fn communication_scales_linearly_in_k() {
        let fed = federation(4, 1000, 11);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        let bytes = |k: usize| {
            fed.reset_query_comm();
            MultiSiloEst::new(12, k).execute(&fed, &q);
            fed.query_comm().total_bytes()
        };
        let b1 = bytes(1);
        let b3 = bytes(3);
        assert!(
            (b3 as f64 / b1 as f64 - 3.0).abs() < 0.2,
            "k=3 should cost ≈3× k=1: {b3} vs {b1}"
        );
    }

    #[test]
    fn failover_skips_dead_silos() {
        let fed = federation(4, 1000, 13);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        fed.set_silo_failed(0, true);
        fed.set_silo_failed(1, true);
        let alg = MultiSiloEst::new(14, 2);
        let r = alg.execute(&fed, &q);
        assert!(r.value > 0.0);
        // Both healthy silos pooled despite the dead ones.
        assert!(r.sampled_silo.map(|s| s >= 2).unwrap_or(false));
    }

    #[test]
    fn k_larger_than_m_clamps_gracefully() {
        let fed = federation(3, 500, 15);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        let alg = MultiSiloEst::new(16, 10);
        let r = alg.execute(&fed, &q);
        assert!(r.value >= 0.0);
        assert!(r.rounds <= 3);
    }
}
