//! Computable forms of the paper's accuracy guarantees (Sec. 6).
//!
//! Each bound is exposed as a plain function so tests and applications can
//! compare empirical error rates against the theory:
//!
//! * [`select_level`] — the Lemma-1 level-selection rule of Alg. 6;
//! * [`lemma1_failure_bound`] — the Chernoff tail of a level-`l` LSR
//!   estimate: `P[|res′ − res| ≥ ε·res] ≤ 2·exp(−ε²·res / (3·2^l))`;
//! * [`theorem_failure_bound`] — the Theorem 1–4 guarantee shared by all
//!   four estimator variants: `ε`-approximation holds with probability at
//!   least `1 − 4·exp(−ε²·ans² / (2·sum₀²))`;
//! * [`epsilon_for_confidence`] — the inverse: the ε needed for a desired
//!   success probability at a given `ans`/`sum₀` ratio;
//! * [`degraded_epsilon`] — the combined sampling + missing-mass bound a
//!   degraded-mode answer reports when only part of the federation's mass
//!   is reachable (DESIGN.md §5i).

/// The Lemma-1 level-selection rule:
/// `l = ⌊log₂(ε²·sum₀ / (3·ln(2/δ)))⌋`, floored at 0.
///
/// The caller clamps to the available forest depth (`LsrForest` does this
/// internally); this standalone form is what the provider uses to report
/// the level it *expects* the silo to use.
///
/// ```
/// use fedra_core::theory::select_level;
/// // ε = 0.1, δ = 0.01, sum₀ = 100 000 → level 5 (sample 1/32 of the data).
/// assert_eq!(select_level(0.1, 0.01, 100_000.0), 5);
/// // Tiny expected results always use the exact tree T₀.
/// assert_eq!(select_level(0.1, 0.01, 10.0), 0);
/// ```
pub fn select_level(epsilon: f64, delta: f64, sum0: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon.is_finite(),
        "epsilon must be positive"
    );
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
    if sum0 <= 0.0 {
        return 0;
    }
    let raw = (epsilon * epsilon * sum0 / (3.0 * (2.0 / delta).ln())).log2();
    if !raw.is_finite() || raw <= 0.0 {
        0
    } else {
        raw.floor() as usize
    }
}

/// Chernoff failure bound of a level-`l` LSR estimate of a local answer
/// `res`: `P[|res′ − res| > ε·res] ≤ 2·exp(−ε²·res / (3·2^l))`.
pub fn lemma1_failure_bound(epsilon: f64, level: usize, res: f64) -> f64 {
    if res <= 0.0 {
        return 1.0_f64.min(2.0); // vacuous: nothing to estimate
    }
    let bound = 2.0 * (-epsilon * epsilon * res / (3.0 * (1u64 << level.min(62)) as f64)).exp();
    bound.min(1.0)
}

/// The shared Theorem 1–4 failure bound:
/// `P[|ans′ − ans| ≥ ε·ans] ≤ 4·exp(−ε²·ans² / (2·sum₀²))`.
///
/// `ans` is the exact answer and `sum₀` the grid-cells upper envelope
/// (the aggregate over all cells intersecting `R`, which always dominates
/// `ans`). As the query radius grows, `ans/sum₀ → 1` and the bound
/// tightens — the mechanism behind the falling MRE curves of Fig. 3a.
pub fn theorem_failure_bound(epsilon: f64, ans: f64, sum0: f64) -> f64 {
    if ans <= 0.0 || sum0 <= 0.0 {
        return 1.0;
    }
    let ratio = ans / sum0;
    (4.0 * (-epsilon * epsilon * ratio * ratio / 2.0 * 1.0).exp()).min(1.0)
}

/// The smallest ε for which [`theorem_failure_bound`] drops below
/// `1 − confidence`: `ε = (sum₀/ans)·√(2·ln(4/(1−confidence)))`.
pub fn epsilon_for_confidence(confidence: f64, ans: f64, sum0: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&confidence),
        "confidence must lie in [0, 1)"
    );
    assert!(ans > 0.0 && sum0 > 0.0, "ans and sum0 must be positive");
    let delta = 1.0 - confidence;
    (sum0 / ans) * (2.0 * (4.0 / delta).ln()).sqrt()
}

/// The error bound of an answer assembled from cached fragments
/// (containment decomposition, DESIGN.md §5f).
///
/// For the monotone aggregates (COUNT/SUM/SUM_SQR) over disjoint
/// fragments `R = ⊎ Rᵢ`, each cached at relative error `εᵢ`:
/// `|ans′ − ans| = |Σ ansᵢ′ − Σ ansᵢ| ≤ Σ εᵢ·ansᵢ ≤ (max εᵢ)·Σ ansᵢ`,
/// so the assembled answer carries relative error at most `max εᵢ` — the
/// served bound is *computed* from the fragments' producer bounds, never
/// assumed. Returns `0.0` for an empty fragment list (an empty sum is
/// exact).
///
/// ```
/// use fedra_core::theory::containment_epsilon;
/// assert_eq!(containment_epsilon(&[0.0, 0.05, 0.02]), 0.05);
/// assert_eq!(containment_epsilon(&[]), 0.0);
/// ```
pub fn containment_epsilon(fragment_epsilons: &[f64]) -> f64 {
    fragment_epsilons.iter().copied().fold(0.0, f64::max)
}

/// Whether a cached answer produced at error `producer_epsilon` may serve
/// a query requesting `requested_epsilon` (the ε-containment rule): the
/// producer's guarantee must be at least as strong, i.e.
/// `producer_epsilon ≤ requested_epsilon`. `0.0` is the exact/degenerate
/// mode and serves everything.
///
/// ```
/// use fedra_core::theory::epsilon_serves;
/// assert!(epsilon_serves(0.0, 0.0));     // exact serves exact
/// assert!(epsilon_serves(0.05, 0.10));   // tighter serves looser
/// assert!(!epsilon_serves(0.10, 0.05));  // looser never serves tighter
/// ```
pub fn epsilon_serves(producer_epsilon: f64, requested_epsilon: f64) -> bool {
    producer_epsilon.is_finite()
        && requested_epsilon.is_finite()
        && producer_epsilon >= 0.0
        && producer_epsilon <= requested_epsilon
}

/// The relative error bound of a pyramid serve: `bound / interior` for a
/// non-negative measure, with the empty-interior conventions of
/// `PyramidEstimate::relative_bound` (0 when nothing is uncertain, ∞ when
/// everything is). Each frontier cell's truth lies in `[0, mass]` while
/// the serve claims `frac·mass`, so the per-cell deviation is at most
/// `max(frac, 1−frac)·mass`; summing and dividing by the certain interior
/// mass (≤ the true answer) yields a sound relative bound.
pub fn pyramid_relative_bound(bound: f64, interior: f64) -> f64 {
    if bound <= 0.0 {
        0.0
    } else if interior <= 0.0 {
        f64::INFINITY
    } else {
        bound / interior
    }
}

/// The combined sampling + missing-mass error bound of a degraded-mode
/// answer (DESIGN.md §5i), **anchored to the `sum₀` envelope**: the
/// degraded answer satisfies `|ans′ − ans| ≤ ε′·sum₀` (with the base
/// guarantee's own δ riding along when the backed share is itself
/// sampled).
///
/// When only a fraction `coverage ∈ [0, 1]` of the in-range grid mass
/// (measured from the per-silo grids `g_k`, which the provider holds
/// regardless of current reachability) is backed by live silo answers,
/// the remaining `1 − coverage` is filled from grid statistics alone.
/// Splitting the absolute error by mass share:
///
/// * the backed share is an ε-approximation of its slice `ans_R ≤
///   coverage·sum₀`, contributing at most `ε·coverage·sum₀`;
/// * the grid-filled share is exact on covered cells and off by at most
///   the full cell mass on boundary cells, so its error is bounded by its
///   entire grid mass, `(1 − coverage)·sum₀`.
///
/// Hence `ε′ = ε·coverage + (1 − coverage)`, clamped to `[ε, 1]`: full
/// coverage recovers the base guarantee, zero coverage is the vacuous
/// whole-envelope bound. Anchoring to `sum₀` rather than the (unknowable)
/// true answer is the same normalization every Sec. 6 bound uses — as
/// `ans/sum₀ → 1` (large ranges, the Fig. 3a regime) the bound approaches
/// a plain relative-error guarantee. The bound degrades *linearly* in the
/// missing mass — the same composition spirit as [`containment_epsilon`],
/// but over mass-weighted shares instead of disjoint fragments.
///
/// ```
/// use fedra_core::theory::degraded_epsilon;
/// // Full coverage: the base guarantee survives unchanged.
/// assert_eq!(degraded_epsilon(0.1, 1.0), 0.1);
/// // An exact fan-out missing 20% of the mass: ε′ = 0.2.
/// assert!((degraded_epsilon(0.0, 0.8) - 0.2).abs() < 1e-12);
/// // Nothing reachable: the bound is vacuous, never above 1.
/// assert_eq!(degraded_epsilon(0.1, 0.0), 1.0);
/// ```
pub fn degraded_epsilon(base_epsilon: f64, coverage: f64) -> f64 {
    let eps = base_epsilon.clamp(0.0, 1.0);
    let c = coverage.clamp(0.0, 1.0);
    (eps * c + (1.0 - c)).clamp(eps, 1.0)
}

/// Expected number of level-`l` samples falling inside the query range
/// when the exact local answer is `res`: `res / 2^l`. The Lemma-1 level
/// keeps this at ≈ `3·ln(2/δ)/ε²` regardless of silo size, which is why
/// the local query cost becomes O(log 1/ε).
pub fn expected_samples_in_range(res: f64, level: usize) -> f64 {
    res / (1u64 << level.min(62)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_level_matches_hand_computation() {
        // ε = 0.1, δ = 0.01 → 3·ln(200) ≈ 15.9; sum0 = 100 000 →
        // 0.01·100000/15.9 ≈ 62.9 → ⌊log₂⌋ = 5.
        assert_eq!(select_level(0.1, 0.01, 100_000.0), 5);
        assert_eq!(select_level(0.1, 0.01, 0.0), 0);
        assert_eq!(select_level(0.1, 0.01, 1.0), 0);
    }

    #[test]
    fn select_level_grows_with_sum0() {
        let l1 = select_level(0.1, 0.01, 1e4);
        let l2 = select_level(0.1, 0.01, 1e6);
        assert!(l2 > l1);
        // Doubling sum0 raises the level by exactly one (once past 0).
        let l = select_level(0.1, 0.01, 1e5);
        assert_eq!(select_level(0.1, 0.01, 2e5), l + 1);
    }

    #[test]
    fn lemma1_bound_respects_the_level_rule() {
        // At the selected level, the failure bound is ≤ δ (the derivation
        // of Lemma 1 picks l so that 2·exp(−ε²·res/(3·2^l)) ≤ δ).
        // The guarantee requires res ≥ 3·ln(2/δ)/ε² (≈1590 here): below
        // that even level 0 (no sampling at all in T₀ — the answer is
        // exact, the Chernoff model just can't see it) the analytic bound
        // is vacuous.
        let (eps, delta) = (0.1, 0.01);
        for res in [2e3, 1e4, 1e5, 1e6] {
            let l = select_level(eps, delta, res);
            let bound = lemma1_failure_bound(eps, l, res);
            assert!(
                bound <= delta + 1e-12,
                "res {res}: level {l} bound {bound} > δ {delta}"
            );
        }
    }

    #[test]
    fn lemma1_bound_monotone_in_level() {
        let b2 = lemma1_failure_bound(0.1, 2, 1e5);
        let b6 = lemma1_failure_bound(0.1, 6, 1e5);
        assert!(b6 > b2, "coarser levels must have weaker guarantees");
    }

    #[test]
    fn theorem_bound_tightens_with_radius() {
        // Larger ans/sum0 ratio (bigger query) → smaller failure bound,
        // the Fig. 3a mechanism.
        let loose = theorem_failure_bound(2.0, 100.0, 1000.0);
        let tight = theorem_failure_bound(2.0, 900.0, 1000.0);
        assert!(tight < loose);
        assert!(theorem_failure_bound(0.1, 0.0, 100.0) == 1.0);
    }

    #[test]
    fn theorem_bound_is_a_probability() {
        for eps in [0.01, 0.1, 1.0, 10.0] {
            for ratio in [0.1, 0.5, 0.9, 1.0] {
                let b = theorem_failure_bound(eps, ratio * 100.0, 100.0);
                assert!((0.0..=1.0).contains(&b));
            }
        }
    }

    #[test]
    fn epsilon_for_confidence_inverts_the_bound() {
        let (ans, sum0) = (800.0, 1000.0);
        for confidence in [0.5, 0.9, 0.99] {
            let eps = epsilon_for_confidence(confidence, ans, sum0);
            let bound = theorem_failure_bound(eps, ans, sum0);
            assert!(
                bound <= (1.0 - confidence) + 1e-9,
                "confidence {confidence}: bound {bound}"
            );
        }
    }

    #[test]
    fn expected_samples_track_the_level_rule() {
        // At the Lemma-1 level the expected in-range sample count is
        // pinned near 3·ln(2/δ)/ε² (within the factor-2 floor slack).
        let (eps, delta) = (0.1, 0.01);
        let target = 3.0 * (2.0f64 / delta).ln() / (eps * eps);
        for res in [1e4, 1e5, 1e6] {
            let l = select_level(eps, delta, res);
            let samples = expected_samples_in_range(res, l);
            assert!(
                samples >= target * 0.99 && samples <= target * 2.01,
                "res {res}: {samples} samples vs target {target}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn epsilon_for_confidence_rejects_one() {
        epsilon_for_confidence(1.0, 1.0, 1.0);
    }

    #[test]
    fn containment_epsilon_is_the_worst_fragment() {
        assert_eq!(containment_epsilon(&[]), 0.0);
        assert_eq!(containment_epsilon(&[0.0, 0.0]), 0.0);
        assert_eq!(containment_epsilon(&[0.02, 0.10, 0.05]), 0.10);
        // A max-composed bound never loosens by adding tighter fragments.
        assert_eq!(containment_epsilon(&[0.10, 0.0]), 0.10);
    }

    #[test]
    fn epsilon_containment_rule_is_one_sided() {
        assert!(epsilon_serves(0.0, 0.0));
        assert!(epsilon_serves(0.0, 0.5));
        assert!(epsilon_serves(0.05, 0.05));
        assert!(!epsilon_serves(0.051, 0.05));
        assert!(!epsilon_serves(f64::NAN, 0.05));
        assert!(!epsilon_serves(-0.1, 0.05));
    }

    #[test]
    fn degraded_epsilon_interpolates_between_base_and_vacuous() {
        // Monotone: less coverage never tightens the bound.
        let mut last = 0.0;
        for i in 0..=10 {
            let c = 1.0 - i as f64 / 10.0;
            let e = degraded_epsilon(0.1, c);
            assert!(e >= last - 1e-12, "coverage {c}: {e} < {last}");
            assert!((0.1..=1.0).contains(&e));
            last = e;
        }
        // A looser base guarantee never comes out tighter.
        assert!(degraded_epsilon(0.3, 0.5) > degraded_epsilon(0.1, 0.5));
        // Out-of-range inputs are clamped, not propagated.
        assert_eq!(degraded_epsilon(0.1, 2.0), 0.1);
        assert_eq!(degraded_epsilon(0.1, -1.0), 1.0);
        assert_eq!(degraded_epsilon(f64::INFINITY, 0.5), 1.0);
    }

    #[test]
    fn pyramid_bound_conventions() {
        assert_eq!(pyramid_relative_bound(0.0, 0.0), 0.0);
        assert_eq!(pyramid_relative_bound(5.0, 0.0), f64::INFINITY);
        assert_eq!(pyramid_relative_bound(5.0, 100.0), 0.05);
    }
}
