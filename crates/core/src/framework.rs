//! The multi-query framework of Alg. 4: batched scatter–gather execution.
//!
//! Single-silo sampling is what makes batching pay: each query lands on an
//! independently sampled silo, so a batch of |Q| queries spreads ≈ |Q|/m
//! per silo instead of |Q| everywhere (the EXACT/OPTA fan-out pattern).
//! For algorithms implementing the plan/finish split
//! ([`FraAlgorithm::supports_planning`]) the engine goes further: it plans
//! every query up front, groups the planned requests by destination silo,
//! and ships each silo's share of the batch as **one coalesced wire
//! frame** — |Q| queries cost at most m rounds (plus resampling rounds),
//! and the per-message envelope overhead is paid once per silo instead of
//! once per query. Algorithms without the split fall back to a worker
//! pool over `try_execute`.
//!
//! [`QueryEngine`] reports the paper's experiment metrics per batch: wall
//! time, throughput, communication, and (given exact references) mean
//! relative error.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use fedra_federation::{
    CommSnapshot, Federation, PendingBatch, Poll, Request, Response, SiloId, TransportError,
};
use fedra_index::pool::WorkerPool;
use fedra_obs::{labeled, ObsContext, Span, TraceHandle};

use crate::algorithm::{note_transition, FraAlgorithm, QueryPlan};
use crate::query::{FraError, FraQuery, QueryResult};

/// Batch execution statistics (one experiment data point).
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query results, in input order.
    pub results: Vec<Result<QueryResult, FraError>>,
    /// Wall-clock time for the whole batch.
    pub wall_time: Duration,
    /// Queries per second (`|Q| / wall_time` — the paper's throughput).
    pub throughput_qps: f64,
    /// Query-time communication consumed by the batch.
    pub comm: CommSnapshot,
}

impl BatchResult {
    /// Mean relative error against a slice of exact reference values
    /// (the paper's MRE, Eq. 3). Failed queries count as error 1.
    ///
    /// # Panics
    /// Panics when the lengths differ.
    pub fn mean_relative_error(&self, exact: &[f64]) -> f64 {
        assert_eq!(exact.len(), self.results.len(), "reference length mismatch");
        if exact.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .results
            .iter()
            .zip(exact)
            .map(|(r, &e)| match r {
                Ok(result) => result.relative_error(e),
                Err(_) => 1.0,
            })
            .sum();
        total / exact.len() as f64
    }

    /// Number of failed queries in the batch.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// Records realized accuracy against exact references into `obs`:
    /// the batch MRE as the `fedra_batch_mre` gauge and each query's
    /// relative error (in parts per million, failures as 1.0) into the
    /// `fedra_realized_error_ppm` histogram.
    ///
    /// Benches call this to close the loop between the *promised*
    /// accuracy (ε, δ recorded at plan time) and the *realized* error.
    ///
    /// # Panics
    /// Panics when the lengths differ.
    pub fn record_accuracy(&self, obs: &ObsContext, exact: &[f64]) {
        assert_eq!(exact.len(), self.results.len(), "reference length mismatch");
        if !obs.is_enabled() || exact.is_empty() {
            return;
        }
        for (r, &e) in self.results.iter().zip(exact) {
            let rel = match r {
                Ok(result) => result.relative_error(e),
                Err(_) => 1.0,
            };
            obs.observe("fedra_realized_error_ppm", (rel * 1e6) as u64);
        }
        obs.set_gauge("fedra_batch_mre", self.mean_relative_error(exact));
    }

    /// Unwraps all results (for healthy-path tests and examples).
    ///
    /// # Panics
    /// Panics when any query in the batch failed; fallible callers should
    /// walk `results` instead.
    pub fn values(&self) -> Vec<f64> {
        self.results
            .iter()
            .map(|r| r.as_ref().expect("batch query failed").value) // fedra-lint: allow(panic-discipline)
            .collect()
    }
}

/// The Alg. 4 execution engine: a worker pool over one algorithm.
pub struct QueryEngine<'a> {
    algorithm: &'a dyn FraAlgorithm,
    workers: usize,
    query_budget: Option<Duration>,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine with one worker per silo — the paper's setup
    /// ("the number of threads equals to the number of silos").
    pub fn per_silo(algorithm: &'a dyn FraAlgorithm, federation: &Federation) -> Self {
        Self {
            algorithm,
            workers: federation.num_silos().max(1),
            query_budget: None,
        }
    }

    /// Creates an engine with an explicit worker count.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn with_workers(algorithm: &'a dyn FraAlgorithm, workers: usize) -> Self {
        assert!(workers > 0, "the engine needs at least one worker");
        Self {
            algorithm,
            workers,
            query_budget: None,
        }
    }

    /// Caps every scatter–gather frame's wait at `budget`, overriding the
    /// federation's [`CallPolicy`](fedra_federation::CallPolicy) deadline
    /// for batches run through this engine. Frames that overrun are
    /// abandoned; their riders resample (or degrade to the grid-only
    /// estimate), so a batch never blocks on a dead silo.
    pub fn with_query_budget(mut self, budget: Duration) -> Self {
        self.query_budget = Some(budget);
        self
    }

    /// The algorithm driven by this engine.
    pub fn algorithm(&self) -> &dyn FraAlgorithm {
        self.algorithm
    }

    /// Executes a batch of queries, measuring wall time / throughput /
    /// communication around the whole batch (Alg. 4 semantics: the batch
    /// arrives at once, answers stream out as silos respond).
    ///
    /// Planning algorithms take the coalesced scatter–gather path (one
    /// wire frame per silo per round); the rest run on the worker pool.
    /// Either way the per-query results are identical to running
    /// `try_execute` on each query — batching changes how frames travel,
    /// not what they compute.
    pub fn execute_batch(&self, federation: &Federation, queries: &[FraQuery]) -> BatchResult {
        self.execute_batch_with(federation, queries, ObsContext::noop())
    }

    /// Executes a batch of queries with instrumentation: per-query traces
    /// and the same lifecycle counters [`drive_planned`] records on the
    /// sequential path (`fedra_silo_requests_total{silo}`,
    /// `fedra_sampled_silo_total{silo}`, plan/resample/degraded counts),
    /// plus batch-level telemetry (`fedra_batch_wall_ns`,
    /// `fedra_query_rounds`, `fedra_queries_total`, failure counts) and a
    /// mirror of the batch's communication delta into `obs.comm()`.
    ///
    /// [`drive_planned`]: crate::algorithm::drive_planned
    ///
    /// Passing [`ObsContext::noop`] makes this identical to
    /// `execute_batch` — every recording is a single untaken branch.
    pub fn execute_batch_with(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
    ) -> BatchResult {
        if obs.is_enabled() {
            obs.set_gauge("fedra_engine_workers", self.workers as f64);
        }
        let comm_before = federation.query_comm();
        // Wall timing feeds BatchResult/throughput reporting only, never
        // a query answer.
        // fedra-lint: allow(determinism-discipline)
        let started = Instant::now();
        let results = if self.algorithm.supports_planning() {
            self.run_planned(federation, queries, obs)
        } else {
            self.run_pooled(federation, queries, obs)
        };
        Self::finish_measurement(federation, queries, results, started, comm_before, obs)
    }

    /// Executes a batch strictly through the per-query `try_execute` path,
    /// ignoring any plan/finish support.
    ///
    /// Kept as the A/B reference for measuring what the coalesced
    /// transport buys: same results, one frame (and two envelope
    /// overheads) per query instead of per silo-group.
    pub fn execute_batch_singleton(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
    ) -> BatchResult {
        self.execute_batch_singleton_with(federation, queries, ObsContext::noop())
    }

    /// Instrumented variant of
    /// [`execute_batch_singleton`](Self::execute_batch_singleton).
    pub fn execute_batch_singleton_with(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
    ) -> BatchResult {
        let comm_before = federation.query_comm();
        // Wall timing feeds BatchResult/throughput reporting only, never
        // a query answer.
        // fedra-lint: allow(determinism-discipline)
        let started = Instant::now();
        let results = self.run_pooled(federation, queries, obs);
        Self::finish_measurement(federation, queries, results, started, comm_before, obs)
    }

    fn finish_measurement(
        federation: &Federation,
        queries: &[FraQuery],
        results: Vec<Result<QueryResult, FraError>>,
        started: Instant,
        comm_before: CommSnapshot,
        obs: &ObsContext,
    ) -> BatchResult {
        let wall_time = started.elapsed();
        let throughput_qps = if wall_time.as_secs_f64() > 0.0 {
            queries.len() as f64 / wall_time.as_secs_f64()
        } else {
            f64::INFINITY
        };
        let comm = federation.query_comm().since(&comm_before);
        if obs.is_enabled() {
            // Mirror the transport's own accounting: the engine adds the
            // batch delta verbatim, so after a from-reset run the mirror
            // matches `federation.query_comm()` bit for bit.
            obs.comm().add_delta(&comm);
            obs.inc("fedra_batches_total");
            obs.add("fedra_queries_total", queries.len() as u64);
            obs.add(
                "fedra_query_failures_total",
                results.iter().filter(|r| r.is_err()).count() as u64,
            );
            obs.observe("fedra_batch_wall_ns", wall_time.as_nanos() as u64);
            for result in results.iter().flatten() {
                obs.observe("fedra_query_rounds", result.rounds);
            }
        }
        BatchResult {
            results,
            wall_time,
            throughput_qps,
            comm,
        }
    }

    /// Worker-pool execution: one `try_execute` per query on a
    /// [`WorkerPool`] sized to this engine's worker count. A panicking
    /// worker forfeits its in-flight queries; those slots surface as
    /// [`FraError::Internal`] while the rest of the batch answers
    /// normally.
    fn run_pooled(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
    ) -> Vec<Result<QueryResult, FraError>> {
        let pool = WorkerPool::new(self.workers);
        if obs.is_enabled() && !queries.is_empty() {
            // Expected share per worker; the pool's shared cursor balances
            // the actual split dynamically.
            obs.observe(
                "fedra_engine_pool_items_per_task",
                queries.len().div_ceil(pool.threads().max(1)) as u64,
            );
        }
        pool.try_map(queries, |_, query| {
            self.algorithm.try_execute_with(federation, query, obs)
        })
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(FraError::Internal {
                    message: "batch worker panicked before answering this query".into(),
                })
            })
        })
        .collect()
    }

    /// Coalesced scatter–gather execution for planning algorithms.
    ///
    /// Planning runs sequentially in input order (it consumes the
    /// algorithm's RNG — sequential order is what keeps a batched run
    /// seed-equivalent to query-for-query execution), then each round
    /// groups the in-flight requests by destination silo, ships one
    /// coalesced frame per silo, and resolves every reply. Queries whose
    /// sampled silo failed advance to their next candidate and ride the
    /// next round's frames; transient refusals retry the same candidate
    /// up to the policy's budget.
    ///
    /// When the federation's [`CallPolicy`](fedra_federation::CallPolicy)
    /// (or [`with_query_budget`](Self::with_query_budget)) sets time
    /// bounds, the same loop becomes deadline-aware: a frame that overruns
    /// the hedge threshold is *parked* — kept in flight — while its riders
    /// re-fire at their next candidate (first answer wins), and a frame
    /// that overruns the deadline budget is abandoned, stranding riders
    /// onto the grid-only degradation. With the default policy every frame
    /// is waited exactly as before.
    fn run_planned(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
    ) -> Vec<Result<QueryResult, FraError>> {
        // Hedged frames without a deadline budget still need a hard bound;
        // an hour is "unbounded" at this layer's time scales.
        const UNBOUNDED: Duration = Duration::from_secs(3600);
        let policy = federation.call_policy();
        let budget = self.query_budget.or(policy.deadline);
        let hedge_after = policy.hedge_after;
        let retries = policy.retries;

        let mut results: Vec<Option<Result<QueryResult, FraError>>> = Vec::new();
        results.resize_with(queries.len(), || None);
        let mut inflight: Vec<Option<PlannedInFlight>> = queries
            .iter()
            .enumerate()
            .map(|(i, query)| {
                let trace = obs.start_trace("query", self.algorithm.name());
                let plan = {
                    let _plan_span = Span::enter(&trace, "plan");
                    self.algorithm.plan_with(federation, query, obs)
                };
                match plan {
                    QueryPlan::Ready(outcome) => {
                        obs.inc("fedra_plan_ready_total");
                        obs.finish_trace(&trace);
                        results[i] = Some(outcome);
                        None
                    }
                    QueryPlan::SingleSilo(plan) => {
                        obs.inc("fedra_plan_remote_total");
                        let remote_span = Some(Span::enter(&trace, "remote"));
                        Some(PlannedInFlight {
                            order: plan.order,
                            request: plan.request,
                            attempt: 0,
                            rounds: 0,
                            retried: 0,
                            hedged: false,
                            stranded: false,
                            trace,
                            remote_span,
                        })
                    }
                }
            })
            .collect();

        let mut parked: Vec<ParkedFrame> = Vec::new();
        loop {
            // First answer wins: drain any parked primaries that resolved
            // (or expired) before regrouping the riders.
            parked = self.drain_parked(
                federation,
                queries,
                obs,
                parked,
                &mut inflight,
                &mut results,
                false,
            );

            // Group the in-flight queries by the silo their current
            // candidate points at. BTreeMap: deterministic frame order.
            let mut groups: BTreeMap<SiloId, Vec<usize>> = BTreeMap::new();
            for (i, entry) in inflight.iter().enumerate() {
                if let Some(entry) = entry {
                    if entry.stranded {
                        continue; // waiting on its parked frame alone
                    }
                    groups
                        .entry(entry.order[entry.attempt])
                        .or_default()
                        .push(i);
                }
            }
            if groups.is_empty() {
                if parked.is_empty() {
                    break;
                }
                // Nothing new to send — wait the parked frames out.
                parked = self.drain_parked(
                    federation,
                    queries,
                    obs,
                    parked,
                    &mut inflight,
                    &mut results,
                    true,
                );
                continue;
            }
            // Scatter: begin every silo's coalesced frame before waiting
            // on any reply — the silo workers run concurrently.
            let pending: Vec<_> = groups
                .into_iter()
                .map(|(silo, indices)| {
                    let requests: Vec<&Request> = indices
                        .iter()
                        .filter_map(|&i| inflight[i].as_ref())
                        .map(|entry| &entry.request)
                        .collect();
                    // Deadline budgets are wall-clock by design; a miss
                    // degrades the frame to the same error value every run
                    // path accepts.
                    // fedra-lint: allow(determinism-discipline)
                    let begun = Instant::now();
                    // A lost entry (requests shorter than indices) would
                    // misalign the reply zip; degrade the whole frame.
                    let batch = (requests.len() == indices.len()).then(|| {
                        federation
                            .channel(silo)
                            .begin_batch_with(&requests, budget.map(|b| begun + b))
                    });
                    (silo, indices, begun, batch)
                })
                .collect();
            // Every begun frame costs its riders one attempt round.
            for (silo, indices, _, _) in &pending {
                for &i in indices {
                    if let Some(entry) = inflight[i].as_mut() {
                        entry.rounds += 1;
                        if obs.is_enabled() {
                            obs.inc(&labeled("fedra_silo_requests_total", "silo", *silo));
                        }
                    }
                }
            }
            // Gather: resolve each frame's per-item results.
            for (silo, indices, begun, batch) in pending {
                let outcome = match batch {
                    Some(Ok(p)) => match hedge_after {
                        // Hedge window: a frame still pending past the
                        // threshold is parked, not failed.
                        Some(after) => match p.poll_deadline(begun + after) {
                            Poll::Ready(Ok(items)) => FrameOutcome::Items(items),
                            Poll::Ready(Err(e)) => FrameOutcome::Failed(Some(e)),
                            Poll::Pending(pending) => FrameOutcome::Park(pending),
                        },
                        None => {
                            let waited = match budget {
                                Some(b) => p.wait_deadline(begun + b),
                                None => p.wait(),
                            };
                            match waited {
                                Ok(items) => FrameOutcome::Items(items),
                                Err(e) => FrameOutcome::Failed(Some(e)),
                            }
                        }
                    },
                    Some(Err(e)) => FrameOutcome::Failed(Some(e)),
                    None => FrameOutcome::Failed(None),
                };
                match outcome {
                    FrameOutcome::Items(items) => {
                        note_transition(
                            obs,
                            federation.health().record_success(silo, begun.elapsed()),
                        );
                        for (i, item) in indices.into_iter().zip(items) {
                            if results[i].is_some() {
                                continue;
                            }
                            let Some(mut entry) = inflight[i].take() else {
                                continue;
                            };
                            match item {
                                Ok(response) => self.resolve_success(
                                    federation,
                                    queries,
                                    obs,
                                    &mut results,
                                    i,
                                    entry,
                                    silo,
                                    response,
                                    false,
                                ),
                                Err(error) => {
                                    note_transition(obs, federation.health().record_failure(silo));
                                    if error.is_deadline() && obs.is_enabled() {
                                        obs.inc(&labeled(
                                            "fedra_deadline_missed_total",
                                            "silo",
                                            silo,
                                        ));
                                    }
                                    if error.is_retryable() && entry.retried < retries {
                                        // Same candidate again next round.
                                        entry.retried += 1;
                                        obs.inc("fedra_retries_total");
                                        inflight[i] = Some(entry);
                                    } else {
                                        self.advance_or_degrade(
                                            federation,
                                            queries,
                                            obs,
                                            &mut results,
                                            &mut inflight,
                                            i,
                                            entry,
                                        );
                                    }
                                }
                            }
                        }
                    }
                    FrameOutcome::Failed(error) => {
                        // Whole-frame transport failure: every rider counts
                        // one failed attempt.
                        note_transition(obs, federation.health().record_failure(silo));
                        let is_deadline = error.as_ref().is_some_and(TransportError::is_deadline);
                        if is_deadline && obs.is_enabled() {
                            obs.inc(&labeled("fedra_deadline_missed_total", "silo", silo));
                        }
                        let retryable = error.as_ref().is_some_and(TransportError::is_retryable);
                        for &i in &indices {
                            if results[i].is_some() {
                                continue;
                            }
                            let Some(mut entry) = inflight[i].take() else {
                                continue;
                            };
                            if retryable && entry.retried < retries {
                                entry.retried += 1;
                                obs.inc("fedra_retries_total");
                                inflight[i] = Some(entry);
                            } else {
                                self.advance_or_degrade(
                                    federation,
                                    queries,
                                    obs,
                                    &mut results,
                                    &mut inflight,
                                    i,
                                    entry,
                                );
                            }
                        }
                    }
                    FrameOutcome::Park(pending) => {
                        // Hedged resampling: riders with another candidate
                        // re-fire there while the primary stays in flight;
                        // riders out of candidates wait on this frame.
                        for &i in &indices {
                            let Some(entry) = inflight[i].as_mut() else {
                                continue;
                            };
                            if entry.attempt + 1 < entry.order.len() {
                                entry.attempt += 1;
                                entry.retried = 0;
                                entry.hedged = true;
                                obs.inc("fedra_hedges_fired_total");
                            } else {
                                entry.stranded = true;
                            }
                        }
                        parked.push(ParkedFrame {
                            pending,
                            silo,
                            indices,
                            begun,
                            deadline: begun + budget.unwrap_or(UNBOUNDED),
                        });
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(FraError::Internal {
                        message: "planned query never resolved to a result".into(),
                    })
                })
            })
            .collect()
    }

    /// Polls the parked frames once (`block = false`: past replies only)
    /// or waits each one out to its hard deadline (`block = true`).
    /// Completed frames resolve the riders that haven't answered elsewhere
    /// yet — first answer wins; expired frames are abandoned, failing
    /// their stranded riders.
    #[allow(clippy::too_many_arguments)]
    fn drain_parked(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
        parked: Vec<ParkedFrame>,
        inflight: &mut [Option<PlannedInFlight>],
        results: &mut [Option<Result<QueryResult, FraError>>],
        block: bool,
    ) -> Vec<ParkedFrame> {
        let mut kept = Vec::new();
        for p in parked {
            // Deadline polling is wall-clock by design (DESIGN.md §5e);
            // the clock decides *when* to give up, never what value a
            // query returns.
            // fedra-lint: allow(determinism-discipline)
            let now = Instant::now();
            let wait_until = if block { p.deadline } else { now };
            match p.pending.poll_deadline(wait_until) {
                Poll::Ready(Ok(items)) => {
                    note_transition(
                        obs,
                        federation
                            .health()
                            .record_success(p.silo, p.begun.elapsed()),
                    );
                    for (i, item) in p.indices.iter().copied().zip(items) {
                        if results[i].is_some() {
                            continue; // the hedge already answered
                        }
                        match item {
                            Ok(response) => {
                                let Some(entry) = inflight[i].take() else {
                                    continue;
                                };
                                self.resolve_success(
                                    federation, queries, obs, results, i, entry, p.silo, response,
                                    true,
                                );
                            }
                            Err(error) => self.fail_stranded(
                                federation, queries, obs, inflight, results, i, &error,
                            ),
                        }
                    }
                }
                Poll::Ready(Err(error)) => {
                    note_transition(obs, federation.health().record_failure(p.silo));
                    if error.is_deadline() && obs.is_enabled() {
                        obs.inc(&labeled("fedra_deadline_missed_total", "silo", p.silo));
                    }
                    for &i in &p.indices {
                        if results[i].is_some() {
                            continue;
                        }
                        self.fail_stranded(federation, queries, obs, inflight, results, i, &error);
                    }
                }
                Poll::Pending(pending) => {
                    if block || now >= p.deadline {
                        // Budget spent: abandon the frame (its reply pair
                        // is discarded; a late reply goes nowhere).
                        if obs.is_enabled() {
                            obs.inc(&labeled("fedra_deadline_missed_total", "silo", p.silo));
                        }
                        note_transition(obs, federation.health().record_failure(p.silo));
                        let expired = TransportError::DeadlineExceeded { silo: p.silo };
                        for &i in &p.indices {
                            if results[i].is_some() {
                                continue;
                            }
                            self.fail_stranded(
                                federation, queries, obs, inflight, results, i, &expired,
                            );
                        }
                    } else {
                        kept.push(ParkedFrame {
                            pending,
                            silo: p.silo,
                            indices: p.indices,
                            begun: p.begun,
                            deadline: p.deadline,
                        });
                    }
                }
            }
        }
        kept
    }

    /// Finishes rider `i` from a successful silo response and closes its
    /// trace. `via_parked` marks a parked primary winning its race — a
    /// hedge win is only counted when the *hedge* answered first.
    #[allow(clippy::too_many_arguments)]
    fn resolve_success(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
        results: &mut [Option<Result<QueryResult, FraError>>],
        i: usize,
        entry: PlannedInFlight,
        silo: SiloId,
        response: Response,
        via_parked: bool,
    ) {
        if obs.is_enabled() {
            obs.inc(&labeled("fedra_sampled_silo_total", "silo", silo));
        }
        if entry.hedged && !via_parked {
            obs.inc("fedra_hedges_won_total");
        }
        let outcome = {
            let _finish_span = Span::enter(&entry.trace, "finish");
            self.algorithm
                .finish_with(federation, &queries[i], silo, response, entry.rounds, obs)
        };
        entry.resolve(obs, &outcome);
        results[i] = Some(outcome);
    }

    /// A parked frame failed for rider `i`. Riders that hedged elsewhere
    /// ignore it (their hedge is still in flight); stranded riders retry
    /// their last candidate on a transient refusal, otherwise degrade.
    fn fail_stranded(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
        inflight: &mut [Option<PlannedInFlight>],
        results: &mut [Option<Result<QueryResult, FraError>>],
        i: usize,
        error: &TransportError,
    ) {
        if !inflight[i].as_ref().is_some_and(|e| e.stranded) {
            return;
        }
        let Some(mut entry) = inflight[i].take() else {
            return;
        };
        entry.stranded = false;
        if error.is_retryable() && entry.retried < federation.call_policy().retries {
            entry.retried += 1;
            obs.inc("fedra_retries_total");
            inflight[i] = Some(entry);
            return;
        }
        obs.inc("fedra_degraded_total");
        let outcome = self
            .algorithm
            .finish_degraded(federation, &queries[i], entry.rounds);
        entry.resolve(obs, &outcome);
        results[i] = Some(outcome);
    }

    /// Counts a resample for rider `i` and moves it to its next candidate,
    /// degrading to the grid-only estimate when none remain.
    fn advance_or_degrade(
        &self,
        federation: &Federation,
        queries: &[FraQuery],
        obs: &ObsContext,
        results: &mut [Option<Result<QueryResult, FraError>>],
        inflight: &mut [Option<PlannedInFlight>],
        i: usize,
        mut entry: PlannedInFlight,
    ) {
        obs.inc("fedra_resamples_total");
        entry.attempt += 1;
        entry.retried = 0;
        if entry.attempt >= entry.order.len() {
            obs.inc("fedra_degraded_total");
            let outcome = self
                .algorithm
                .finish_degraded(federation, &queries[i], entry.rounds);
            entry.resolve(obs, &outcome);
            results[i] = Some(outcome);
        } else {
            // Still in flight: ride the next round.
            inflight[i] = Some(entry);
        }
    }
}

/// One planned query riding the scatter–gather rounds of
/// [`QueryEngine::run_planned`].
struct PlannedInFlight {
    order: Vec<SiloId>,
    request: Request,
    attempt: usize,
    rounds: u64,
    /// Transient retries already burned on the current candidate.
    retried: u32,
    /// A hedge is (or was) in flight: the primary frame parked and this
    /// query re-fired at its next candidate.
    hedged: bool,
    /// Out of candidates while its frame is parked: the query waits on
    /// that frame alone and is skipped by regrouping.
    stranded: bool,
    trace: TraceHandle,
    /// Open for as long as the query rides scatter–gather rounds;
    /// dropped (recording the duration) when the query resolves.
    remote_span: Option<Span>,
}

impl PlannedInFlight {
    /// Closes the remote span and finalizes the query's trace.
    fn resolve(mut self, obs: &ObsContext, result: &Result<QueryResult, FraError>) {
        drop(self.remote_span.take());
        if let Ok(r) = result {
            self.trace.attr("rounds", r.rounds);
            if let Some(silo) = r.sampled_silo {
                self.trace.attr("silo", silo);
            }
            if let Some(level) = r.lsr_level {
                self.trace.attr("level", level);
            }
            crate::algorithm::note_coverage(obs, r);
        }
        obs.finish_trace(&self.trace);
    }
}

/// A scatter frame that overran the hedge threshold: kept in flight while
/// its riders hedge on other silos — first answer wins — until its hard
/// deadline.
struct ParkedFrame {
    pending: PendingBatch,
    silo: SiloId,
    indices: Vec<usize>,
    begun: Instant,
    deadline: Instant,
}

/// How one scatter frame resolved.
enum FrameOutcome {
    /// Per-item results arrived (frame-level success).
    Items(Vec<Result<Response, TransportError>>),
    /// The whole frame failed (`None`: it was never begun).
    Failed(Option<TransportError>),
    /// Still pending past the hedge threshold — park it.
    Park(PendingBatch),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exact;
    use crate::sampling::{IidEst, NonIidEst};
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::AggFunc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(m: usize, per_silo: usize) -> Federation {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut rng = StdRng::seed_from_u64(55);
        let partitions: Vec<Vec<SpatialObject>> = (0..m)
            .map(|_| {
                (0..per_silo)
                    .map(|_| {
                        SpatialObject::at(
                            rng.random_range(0.0..100.0),
                            rng.random_range(0.0..100.0),
                            rng.random_range(1.0..4.0),
                        )
                    })
                    .collect()
            })
            .collect();
        FederationBuilder::new(bounds)
            .grid_cell_len(5.0)
            .histogram_config(MinSkewConfig {
                resolution: 16,
                budget: 16,
            })
            .build(partitions)
    }

    fn queries(n: usize, seed: u64) -> Vec<FraQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                FraQuery::circle(
                    Point::new(rng.random_range(10.0..90.0), rng.random_range(10.0..90.0)),
                    10.0,
                    AggFunc::Count,
                )
            })
            .collect()
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let fed = setup(3, 1000);
        let qs = queries(20, 1);
        let exact = Exact::new();
        let engine = QueryEngine::per_silo(&exact, &fed);
        let batch = engine.execute_batch(&fed, &qs);
        assert_eq!(batch.results.len(), 20);
        assert_eq!(batch.failures(), 0);
        // Sequential re-execution must match slot for slot (EXACT is
        // deterministic).
        for (i, q) in qs.iter().enumerate() {
            let sequential = exact.execute(&fed, q).value;
            assert_eq!(batch.results[i].as_ref().unwrap().value, sequential);
        }
    }

    #[test]
    fn throughput_and_comm_are_recorded() {
        let fed = setup(3, 500);
        fed.reset_query_comm();
        let qs = queries(30, 2);
        let alg = IidEst::new(3);
        let engine = QueryEngine::per_silo(&alg, &fed);
        let batch = engine.execute_batch(&fed, &qs);
        assert!(batch.throughput_qps > 0.0);
        // Coalesced: the 30 queries share at most one frame per silo.
        assert!(
            batch.comm.rounds <= 3,
            "expected ≤ 3 coalesced rounds, got {}",
            batch.comm.rounds
        );
        assert!(batch.wall_time > Duration::ZERO);
    }

    #[test]
    fn batched_path_amortizes_envelopes_over_singleton() {
        let fed = setup(3, 500);
        let qs = queries(40, 20);
        let alg = IidEst::new(21);
        let engine = QueryEngine::per_silo(&alg, &fed);
        fed.reset_query_comm();
        let batched = engine.execute_batch(&fed, &qs);
        // One worker: the singleton pool then consumes the RNG in input
        // order, making it seed-comparable to the (sequentially planned)
        // batched run.
        let alg_seq = IidEst::new(21);
        let engine_seq = QueryEngine::with_workers(&alg_seq, 1);
        fed.reset_query_comm();
        let singleton = engine_seq.execute_batch_singleton(&fed, &qs);
        // Same seed, same queries: identical answers...
        for (a, b) in batched.results.iter().zip(&singleton.results) {
            assert_eq!(a.as_ref().unwrap().value, b.as_ref().unwrap().value);
        }
        // ...but the batched run pays one envelope per silo, not per query.
        assert_eq!(singleton.comm.rounds, 40);
        assert!(batched.comm.rounds <= 3);
        assert!(
            batched.comm.total_bytes() < singleton.comm.total_bytes() / 2,
            "batched {} bytes vs singleton {} bytes",
            batched.comm.total_bytes(),
            singleton.comm.total_bytes()
        );
    }

    #[test]
    fn batched_iid_est_matches_sequential_fixed_seed() {
        let fed = setup(3, 1000);
        let qs = queries(25, 9);
        // Batched via the engine...
        let alg = IidEst::new(42);
        let batch = QueryEngine::per_silo(&alg, &fed).execute_batch(&fed, &qs);
        // ...vs a fresh same-seed instance executed query for query.
        let reference = IidEst::new(42);
        for (i, q) in qs.iter().enumerate() {
            let sequential = reference.try_execute(&fed, q).unwrap();
            let batched = batch.results[i].as_ref().unwrap();
            assert_eq!(batched.value, sequential.value, "query {i}");
            assert_eq!(batched.sampled_silo, sequential.sampled_silo, "query {i}");
            assert_eq!(batched.rounds, sequential.rounds, "query {i}");
        }
    }

    #[test]
    fn batched_noniid_est_matches_sequential_fixed_seed() {
        let fed = setup(4, 800);
        let qs = queries(25, 10);
        let alg = NonIidEst::new(43);
        let batch = QueryEngine::per_silo(&alg, &fed).execute_batch(&fed, &qs);
        let reference = NonIidEst::new(43);
        for (i, q) in qs.iter().enumerate() {
            let sequential = reference.try_execute(&fed, q).unwrap();
            let batched = batch.results[i].as_ref().unwrap();
            assert_eq!(batched.value, sequential.value, "query {i}");
            assert_eq!(batched.sampled_silo, sequential.sampled_silo, "query {i}");
        }
    }

    #[test]
    fn batched_resampling_survives_a_failed_silo() {
        let fed = setup(4, 600);
        let qs = queries(30, 11);
        fed.set_silo_failed(2, true);
        let alg = IidEst::new(44);
        let batch = QueryEngine::per_silo(&alg, &fed).execute_batch(&fed, &qs);
        assert_eq!(batch.failures(), 0);
        // Every answered query sampled a healthy silo (possibly after a
        // failed first attempt, which shows up as rounds > 1).
        let reference = IidEst::new(44);
        for (i, q) in qs.iter().enumerate() {
            let batched = batch.results[i].as_ref().unwrap();
            assert_ne!(
                batched.sampled_silo,
                Some(2),
                "query {i} stuck on failed silo"
            );
            let sequential = reference.try_execute(&fed, q).unwrap();
            assert_eq!(batched.value, sequential.value, "query {i}");
            assert_eq!(batched.sampled_silo, sequential.sampled_silo, "query {i}");
            assert_eq!(batched.rounds, sequential.rounds, "query {i}");
        }
        fed.set_silo_failed(2, false);
    }

    #[test]
    fn batched_exact_matches_singleton_path() {
        let fed = setup(3, 800);
        let qs = queries(15, 12);
        let exact = Exact::new();
        let engine = QueryEngine::per_silo(&exact, &fed);
        let batched = engine.execute_batch(&fed, &qs);
        let singleton = engine.execute_batch_singleton(&fed, &qs);
        for (a, b) in batched.results.iter().zip(&singleton.results) {
            assert_eq!(a.as_ref().unwrap().value, b.as_ref().unwrap().value);
        }
    }

    #[test]
    fn sampling_spreads_load_across_silos() {
        let fed = setup(4, 800);
        let served_before = fed.served_per_silo();
        let alg = NonIidEst::new(5);
        let engine = QueryEngine::per_silo(&alg, &fed);
        engine.execute_batch(&fed, &queries(200, 6));
        let served_after = fed.served_per_silo();
        let deltas: Vec<u64> = served_before
            .iter()
            .zip(&served_after)
            .map(|(b, a)| a - b)
            .collect();
        let total: u64 = deltas.iter().sum();
        assert_eq!(total, 200);
        // Expect ≈ 50 per silo; allow wide randomness margins.
        for (k, d) in deltas.iter().enumerate() {
            assert!(
                (20..=90).contains(d),
                "silo {k} served {d} of 200 queries — load not balanced: {deltas:?}"
            );
        }
    }

    #[test]
    fn mre_against_exact_references() {
        let fed = setup(3, 2000);
        let qs = queries(15, 7);
        let exact_alg = Exact::new();
        let exact_vals: Vec<f64> = qs
            .iter()
            .map(|q| exact_alg.execute(&fed, q).value)
            .collect();
        let alg = IidEst::new(8);
        let engine = QueryEngine::per_silo(&alg, &fed);
        let batch = engine.execute_batch(&fed, &qs);
        let mre = batch.mean_relative_error(&exact_vals);
        assert!(mre < 0.3, "MRE {mre}");
        // EXACT against itself is 0.
        let batch = QueryEngine::per_silo(&exact_alg, &fed).execute_batch(&fed, &qs);
        assert_eq!(batch.mean_relative_error(&exact_vals), 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let fed = setup(2, 100);
        let exact = Exact::new();
        let engine = QueryEngine::per_silo(&exact, &fed);
        let batch = engine.execute_batch(&fed, &[]);
        assert!(batch.results.is_empty());
        assert_eq!(batch.mean_relative_error(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let exact = Exact::new();
        QueryEngine::with_workers(&exact, 0);
    }
}
