//! The multi-query framework of Alg. 4: parallel batch execution.
//!
//! Single-silo sampling is what makes parallelism pay: each query lands on
//! an independently sampled silo, so a batch of |Q| queries spreads
//! ≈ |Q|/m per silo instead of |Q| everywhere (the EXACT/OPTA fan-out
//! pattern). [`QueryEngine`] drives a batch through a worker pool and
//! reports the paper's experiment metrics for it: wall time, throughput,
//! communication, and (given exact references) mean relative error.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use fedra_federation::{CommSnapshot, Federation};

use crate::algorithm::FraAlgorithm;
use crate::query::{FraError, FraQuery, QueryResult};

/// Batch execution statistics (one experiment data point).
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query results, in input order.
    pub results: Vec<Result<QueryResult, FraError>>,
    /// Wall-clock time for the whole batch.
    pub wall_time: Duration,
    /// Queries per second (`|Q| / wall_time` — the paper's throughput).
    pub throughput_qps: f64,
    /// Query-time communication consumed by the batch.
    pub comm: CommSnapshot,
}

impl BatchResult {
    /// Mean relative error against a slice of exact reference values
    /// (the paper's MRE, Eq. 3). Failed queries count as error 1.
    ///
    /// # Panics
    /// Panics when the lengths differ.
    pub fn mean_relative_error(&self, exact: &[f64]) -> f64 {
        assert_eq!(exact.len(), self.results.len(), "reference length mismatch");
        if exact.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .results
            .iter()
            .zip(exact)
            .map(|(r, &e)| match r {
                Ok(result) => result.relative_error(e),
                Err(_) => 1.0,
            })
            .sum();
        total / exact.len() as f64
    }

    /// Number of failed queries in the batch.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| r.is_err()).count()
    }

    /// Unwraps all results (for healthy-path tests and examples).
    pub fn values(&self) -> Vec<f64> {
        self.results
            .iter()
            .map(|r| r.as_ref().expect("batch query failed").value)
            .collect()
    }
}

/// The Alg. 4 execution engine: a worker pool over one algorithm.
pub struct QueryEngine<'a> {
    algorithm: &'a dyn FraAlgorithm,
    workers: usize,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine with one worker per silo — the paper's setup
    /// ("the number of threads equals to the number of silos").
    pub fn per_silo(algorithm: &'a dyn FraAlgorithm, federation: &Federation) -> Self {
        Self {
            algorithm,
            workers: federation.num_silos().max(1),
        }
    }

    /// Creates an engine with an explicit worker count.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn with_workers(algorithm: &'a dyn FraAlgorithm, workers: usize) -> Self {
        assert!(workers > 0, "the engine needs at least one worker");
        Self { algorithm, workers }
    }

    /// The algorithm driven by this engine.
    pub fn algorithm(&self) -> &dyn FraAlgorithm {
        self.algorithm
    }

    /// Executes a batch of queries, measuring wall time / throughput /
    /// communication around the whole batch (Alg. 4 semantics: the batch
    /// arrives at once, answers stream out as silos respond).
    pub fn execute_batch(&self, federation: &Federation, queries: &[FraQuery]) -> BatchResult {
        let comm_before = federation.query_comm();
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<Result<QueryResult, FraError>>> = Vec::new();
        results.resize_with(queries.len(), || None);
        let slots = parking_lot::Mutex::new(&mut results);

        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(queries.len().max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let outcome = self.algorithm.try_execute(federation, &queries[i]);
                    slots.lock()[i] = Some(outcome);
                });
            }
        });
        let wall_time = started.elapsed();

        let results: Vec<Result<QueryResult, FraError>> = results
            .into_iter()
            .map(|slot| slot.expect("every query slot is filled"))
            .collect();
        let throughput_qps = if wall_time.as_secs_f64() > 0.0 {
            queries.len() as f64 / wall_time.as_secs_f64()
        } else {
            f64::INFINITY
        };
        BatchResult {
            results,
            wall_time,
            throughput_qps,
            comm: federation.query_comm().since(&comm_before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exact;
    use crate::sampling::{IidEst, NonIidEst};
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::AggFunc;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(m: usize, per_silo: usize) -> Federation {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut rng = StdRng::seed_from_u64(55);
        let partitions: Vec<Vec<SpatialObject>> = (0..m)
            .map(|_| {
                (0..per_silo)
                    .map(|_| {
                        SpatialObject::at(
                            rng.random_range(0.0..100.0),
                            rng.random_range(0.0..100.0),
                            rng.random_range(1.0..4.0),
                        )
                    })
                    .collect()
            })
            .collect();
        FederationBuilder::new(bounds)
            .grid_cell_len(5.0)
            .histogram_config(MinSkewConfig {
                resolution: 16,
                budget: 16,
            })
            .build(partitions)
    }

    fn queries(n: usize, seed: u64) -> Vec<FraQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                FraQuery::circle(
                    Point::new(rng.random_range(10.0..90.0), rng.random_range(10.0..90.0)),
                    10.0,
                    AggFunc::Count,
                )
            })
            .collect()
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let fed = setup(3, 1000);
        let qs = queries(20, 1);
        let exact = Exact::new();
        let engine = QueryEngine::per_silo(&exact, &fed);
        let batch = engine.execute_batch(&fed, &qs);
        assert_eq!(batch.results.len(), 20);
        assert_eq!(batch.failures(), 0);
        // Sequential re-execution must match slot for slot (EXACT is
        // deterministic).
        for (i, q) in qs.iter().enumerate() {
            let sequential = exact.execute(&fed, q).value;
            assert_eq!(batch.results[i].as_ref().unwrap().value, sequential);
        }
    }

    #[test]
    fn throughput_and_comm_are_recorded() {
        let fed = setup(3, 500);
        fed.reset_query_comm();
        let qs = queries(30, 2);
        let alg = IidEst::new(3);
        let engine = QueryEngine::per_silo(&alg, &fed);
        let batch = engine.execute_batch(&fed, &qs);
        assert!(batch.throughput_qps > 0.0);
        assert_eq!(batch.comm.rounds, 30); // one silo per query
        assert!(batch.wall_time > Duration::ZERO);
    }

    #[test]
    fn sampling_spreads_load_across_silos() {
        let fed = setup(4, 800);
        let served_before = fed.served_per_silo();
        let alg = NonIidEst::new(5);
        let engine = QueryEngine::per_silo(&alg, &fed);
        engine.execute_batch(&fed, &queries(200, 6));
        let served_after = fed.served_per_silo();
        let deltas: Vec<u64> = served_before
            .iter()
            .zip(&served_after)
            .map(|(b, a)| a - b)
            .collect();
        let total: u64 = deltas.iter().sum();
        assert_eq!(total, 200);
        // Expect ≈ 50 per silo; allow wide randomness margins.
        for (k, d) in deltas.iter().enumerate() {
            assert!(
                (20..=90).contains(d),
                "silo {k} served {d} of 200 queries — load not balanced: {deltas:?}"
            );
        }
    }

    #[test]
    fn mre_against_exact_references() {
        let fed = setup(3, 2000);
        let qs = queries(15, 7);
        let exact_alg = Exact::new();
        let exact_vals: Vec<f64> = qs.iter().map(|q| exact_alg.execute(&fed, q).value).collect();
        let alg = IidEst::new(8);
        let engine = QueryEngine::per_silo(&alg, &fed);
        let batch = engine.execute_batch(&fed, &qs);
        let mre = batch.mean_relative_error(&exact_vals);
        assert!(mre < 0.3, "MRE {mre}");
        // EXACT against itself is 0.
        let batch = QueryEngine::per_silo(&exact_alg, &fed).execute_batch(&fed, &qs);
        assert_eq!(batch.mean_relative_error(&exact_vals), 0.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let fed = setup(2, 100);
        let exact = Exact::new();
        let engine = QueryEngine::per_silo(&exact, &fed);
        let batch = engine.execute_batch(&fed, &[]);
        assert!(batch.results.is_empty());
        assert_eq!(batch.mean_relative_error(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let exact = Exact::new();
        QueryEngine::with_workers(&exact, 0);
    }
}
