//! Concurrent query scheduler: many in-flight queries share the
//! federation, one wire frame per silo per tick.
//!
//! [`QueryEngine`](crate::QueryEngine) coalesces silo requests *within*
//! one batch; concurrent callers still serialize on the engine and each
//! pays its own round trips. [`QueryScheduler`] lifts the same
//! scatter–gather loop to a serving layer: clients
//! [`submit`](QueryScheduler::submit) queries from any thread, a driver
//! thread plans and finishes them on the silo-local
//! [`WorkerPool`](fedra_index::WorkerPool), and every scheduling tick
//! merges the outstanding remote requests of *all* in-flight queries into
//! one multiplexed frame per silo
//! ([`SiloChannel::begin_tagged_batch_with`]), routing replies back by
//! correlation id.
//!
//! # Determinism contract
//!
//! Coalescing may change *when* frames travel, never *what* a query
//! computes. Each submission gets a fresh algorithm instance from the
//! scheduler's seed factory, so no RNG state is shared between queries:
//! a query's result is a function of `(query, seed)` alone and is
//! bit-identical to serial execution of the same pair
//! (`tests/concurrent_equivalence.rs` pins this). Admission control and
//! deadlines are the exception by design — *whether* a query is shed
//! under overload is wall-clock dependent, its value never is.
//!
//! # Admission control and backpressure
//!
//! Every submission names an admission class ([`ClassPolicy`]): a bounded
//! queue budget and an optional deadline measured from **submission**
//! time (not dispatch — queue wait counts against the budget). Overload
//! sheds in three places, all counted under `fedra_shed_total`:
//!
//! 1. **queue-full** — the class budget is exhausted at submit;
//! 2. **expired at dispatch** — the deadline passed while queued; the
//!    request still travels, as an already-expired frame the silo sheds
//!    for one byte-counted round trip (the PR 5
//!    `Response::DeadlineExceeded` path), so shed traffic lands in the
//!    same communication ledger as served traffic;
//! 3. **expired in flight** — the silo (or the frame wait) ran past the
//!    deadline.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fedra_federation::{Federation, Request, SiloId, TransportError};
use fedra_index::pool::WorkerPool;
use fedra_obs::{labeled, ObsContext};

use crate::algorithm::{note_transition, FraAlgorithm, QueryPlan, RemotePlan};
use crate::query::{FraError, FraQuery, QueryResult};

#[cfg(doc)]
use fedra_federation::SiloChannel;

/// How long a gather waits for the silo's byte-counted refusal of an
/// intentionally-expired frame before abandoning the reply. The shed is
/// silo-side either way; the grace window only decides whether its bytes
/// get recorded before the tick moves on.
const SHED_GRACE: Duration = Duration::from_millis(250);

/// One admission class: a name (for `class="..."` metric labels), a
/// bounded queue budget, and an optional deadline enforced from
/// submission time.
#[derive(Debug, Clone)]
pub struct ClassPolicy {
    /// Label value for this class's `fedra_sched_*`/`fedra_shed_*` series.
    pub name: String,
    /// Queued-but-not-yet-dispatched submissions admitted before
    /// [`SubmitError::QueueFull`] sheds the overflow.
    pub queue_capacity: usize,
    /// Total budget from submission to answer; `None` waits forever.
    pub deadline: Option<Duration>,
}

impl ClassPolicy {
    /// A deadline-free class with the given name and queue budget.
    pub fn unbounded(name: &str, queue_capacity: usize) -> Self {
        ClassPolicy {
            name: name.to_string(),
            queue_capacity,
            deadline: None,
        }
    }

    /// A class whose queries expire `deadline` after submission.
    pub fn with_deadline(name: &str, queue_capacity: usize, deadline: Duration) -> Self {
        ClassPolicy {
            name: name.to_string(),
            queue_capacity,
            deadline: Some(deadline),
        }
    }
}

/// Scheduler tuning knobs; the defaults serve a single deadline-free
/// class with a generous queue.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Admission classes, addressed by index in
    /// [`QueryScheduler::submit`].
    pub classes: Vec<ClassPolicy>,
    /// Most new submissions planned per tick; the rest stay queued and
    /// ride the next tick (bounds per-tick plan latency under burst).
    pub tick_admissions: usize,
    /// Plan/finish pool width (`0` = the `FEDRA_SILO_THREADS` /
    /// core-count auto policy, like the silo-local pools).
    pub workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            classes: vec![ClassPolicy::unbounded("default", 4096)],
            tick_admissions: 256,
            workers: 0,
        }
    }
}

/// Why a submission was rejected at the front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The class's admission queue is at capacity — the query was shed
    /// without planning (counted under `fedra_shed_total`).
    QueueFull {
        /// The class whose budget was exhausted.
        class: String,
    },
    /// No such class index in the scheduler's configuration.
    UnknownClass {
        /// The out-of-range index.
        class: usize,
    },
    /// The scheduler is shutting down and accepts no new work.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { class } => {
                write!(f, "admission queue full for class `{class}` — query shed")
            }
            SubmitError::UnknownClass { class } => {
                write!(f, "no admission class with index {class}")
            }
            SubmitError::Shutdown => write!(f, "scheduler is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A one-shot result cell shared between the driver and one client.
///
/// Hand-rolled (mutex + condvar) rather than a channel so the driver can
/// fill it from inside a [`WorkerPool`] closure — the cell is `Sync`, and
/// the waiter parks instead of spinning.
struct TicketCell {
    /// `None` while the query is in flight. Unique field name: the
    /// lock-order lint identifies locks by field name workspace-wide.
    filled: Mutex<Option<Result<QueryResult, FraError>>>,
    ready: Condvar,
}

impl TicketCell {
    fn new() -> Self {
        TicketCell {
            filled: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// First delivery wins; later ones are dropped.
    fn deliver(&self, outcome: Result<QueryResult, FraError>) {
        let mut slot = self.filled.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(outcome);
            self.ready.notify_all();
        }
    }

    fn take(&self) -> Result<QueryResult, FraError> {
        let mut slot = self.filled.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A claim on one submitted query; redeem it with [`QueryTicket::wait`].
pub struct QueryTicket {
    id: u64,
    cell: Arc<TicketCell>,
}

impl QueryTicket {
    /// The submission's correlation id (the same id that rides the
    /// multiplexed wire frames).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Parks until the scheduler answers (or sheds) the query.
    pub fn wait(self) -> Result<QueryResult, FraError> {
        self.cell.take()
    }
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket").field("id", &self.id).finish()
    }
}

/// One accepted submission, queued until a tick admits it.
struct Submission {
    id: u64,
    query: FraQuery,
    seed: u64,
    class: usize,
    submitted_at: Instant,
    /// `submitted_at + class deadline`: queue wait spends the budget.
    deadline: Option<Instant>,
    cell: Arc<TicketCell>,
}

/// Intake shared between client threads and the driver.
struct IntakeState {
    backlog: VecDeque<Submission>,
    /// Queued-per-class counts, indexed like `SchedulerConfig::classes`.
    per_class: Vec<usize>,
    closed: bool,
}

struct Intake {
    /// Unique field name: the lock-order lint identifies locks by field
    /// name workspace-wide.
    gate: Mutex<IntakeState>,
    wakeup: Condvar,
}

impl Intake {
    fn lock(&self) -> MutexGuard<'_, IntakeState> {
        self.gate.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The remote leg of a planned query (none for plans that resolved
/// provider-side).
struct RemoteLeg {
    /// Candidate silos in visiting order (head = sampled silo).
    order: Vec<SiloId>,
    request: Request,
    /// Index of the current candidate in `order`.
    attempt: usize,
    /// Transient retries already burned on the current candidate.
    retried: u32,
}

/// One query riding the scheduler's ticks.
struct ActiveQuery {
    id: u64,
    query: FraQuery,
    class: usize,
    alg: Box<dyn FraAlgorithm>,
    leg: Option<RemoteLeg>,
    rounds: u64,
    submitted_at: Instant,
    deadline: Option<Instant>,
    cell: Arc<TicketCell>,
    /// Set once the query resolved (answer, degradation, or shed);
    /// delivered and dropped at the end of the tick.
    done: Option<Result<QueryResult, FraError>>,
}

/// The serving front end. See the module docs for the tick model.
///
/// Dropping the scheduler (or calling [`shutdown`](Self::shutdown))
/// closes intake, drains every queued and in-flight query to its ticket,
/// and joins the driver thread.
pub struct QueryScheduler {
    intake: Arc<Intake>,
    classes: Vec<ClassPolicy>,
    obs: Arc<ObsContext>,
    next_id: AtomicU64,
    driver: Option<JoinHandle<()>>,
}

impl QueryScheduler {
    /// Starts the driver thread. `factory` builds one fresh algorithm per
    /// submission from the submission's seed — the scheduler never shares
    /// algorithm state (or RNG state) between queries.
    pub fn start<F>(
        federation: Arc<Federation>,
        factory: F,
        config: SchedulerConfig,
        obs: Arc<ObsContext>,
    ) -> Self
    where
        F: Fn(u64) -> Box<dyn FraAlgorithm> + Send + Sync + 'static,
    {
        let classes = if config.classes.is_empty() {
            SchedulerConfig::default().classes
        } else {
            config.classes.clone()
        };
        let intake = Arc::new(Intake {
            gate: Mutex::new(IntakeState {
                backlog: VecDeque::new(),
                per_class: vec![0; classes.len()],
                closed: false,
            }),
            wakeup: Condvar::new(),
        });
        let pool = if config.workers == 0 {
            WorkerPool::auto()
        } else {
            WorkerPool::new(config.workers)
        };
        let driver = Driver {
            federation,
            factory: Box::new(factory),
            pool,
            obs: Arc::clone(&obs),
            intake: Arc::clone(&intake),
            classes: classes.clone(),
            tick_admissions: config.tick_admissions.max(1),
        };
        let handle = std::thread::Builder::new()
            .name("fedra-sched".to_string())
            .spawn(move || driver.run())
            .ok();
        QueryScheduler {
            intake,
            classes,
            obs,
            next_id: AtomicU64::new(1),
            driver: handle,
        }
    }

    /// Submits one query under the given admission class (an index into
    /// [`SchedulerConfig::classes`]). Returns immediately: redeem the
    /// ticket with [`QueryTicket::wait`] from any thread.
    pub fn submit(
        &self,
        query: FraQuery,
        seed: u64,
        class: usize,
    ) -> Result<QueryTicket, SubmitError> {
        let Some(policy) = self.classes.get(class) else {
            return Err(SubmitError::UnknownClass { class });
        };
        let cell = Arc::new(TicketCell::new());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut st = self.intake.lock();
            if st.closed {
                return Err(SubmitError::Shutdown);
            }
            if st.per_class[class] >= policy.queue_capacity {
                if self.obs.is_enabled() {
                    self.obs
                        .inc(&labeled("fedra_shed_total", "class", &policy.name));
                }
                self.obs.inc("fedra_shed_queue_full_total");
                return Err(SubmitError::QueueFull {
                    class: policy.name.clone(),
                });
            }
            st.per_class[class] += 1;
            // Wall-clock by design: deadlines and queue-wait metrics are
            // serving-layer concerns, never part of a query's value.
            let submitted_at = Instant::now();
            st.backlog.push_back(Submission {
                id,
                query,
                seed,
                class,
                submitted_at,
                deadline: policy.deadline.map(|d| submitted_at + d),
                cell: Arc::clone(&cell),
            });
            st.backlog.len()
        };
        if self.obs.is_enabled() {
            self.obs.inc(&labeled(
                "fedra_sched_submitted_total",
                "class",
                &policy.name,
            ));
        }
        self.obs.set_gauge("fedra_sched_queue_depth", depth as f64);
        self.intake.wakeup.notify_all();
        Ok(QueryTicket { id, cell })
    }

    /// Closes intake, drains all accepted work to its tickets, and joins
    /// the driver. Also runs on drop; calling it explicitly just makes
    /// the join visible.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut st = self.intake.lock();
            st.closed = true;
        }
        self.intake.wakeup.notify_all();
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for QueryScheduler {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// The driver thread's state: everything a tick needs.
struct Driver {
    federation: Arc<Federation>,
    factory: Box<dyn Fn(u64) -> Box<dyn FraAlgorithm> + Send + Sync>,
    pool: WorkerPool,
    obs: Arc<ObsContext>,
    intake: Arc<Intake>,
    classes: Vec<ClassPolicy>,
    tick_admissions: usize,
}

/// One coalesced frame begun this tick, pending its gather.
struct TickFrame {
    silo: SiloId,
    /// Indices into `active`, in deterministic (BTreeMap, then active)
    /// order — the same order the tagged requests ride the frame.
    riders: Vec<usize>,
    begun: Instant,
    deadline: Option<Instant>,
    /// The frame was dead on arrival by design: its riders expired in
    /// queue and the silo sheds it whole, byte-counted.
    expired: bool,
    batch: Result<fedra_federation::PendingTaggedBatch, TransportError>,
}

impl Driver {
    fn run(self) {
        let mut active: Vec<ActiveQuery> = Vec::new();
        loop {
            let Some(admitted) = self.take_admissions(active.is_empty()) else {
                break;
            };
            self.obs.inc("fedra_sched_ticks_total");
            self.plan_admissions(admitted, &mut active);
            self.obs
                .set_gauge("fedra_sched_active", active.len() as f64);
            self.pump_frames(&mut active);
            self.deliver_done(&mut active);
        }
    }

    /// Pops up to `tick_admissions` submissions. Parks on the intake
    /// condvar when there is nothing to do at all; returns `None` exactly
    /// once, when intake is closed and fully drained (`may_block` implies
    /// no in-flight queries remain either).
    fn take_admissions(&self, may_block: bool) -> Option<Vec<Submission>> {
        let mut st = self.intake.lock();
        while may_block && st.backlog.is_empty() && !st.closed {
            st = self
                .intake
                .wakeup
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if may_block && st.backlog.is_empty() && st.closed {
            return None;
        }
        let n = st.backlog.len().min(self.tick_admissions);
        let admitted: Vec<Submission> = st.backlog.drain(..n).collect();
        for sub in &admitted {
            st.per_class[sub.class] -= 1;
        }
        self.obs
            .set_gauge("fedra_sched_queue_depth", st.backlog.len() as f64);
        Some(admitted)
    }

    /// Plans the tick's admissions on the worker pool (one fresh
    /// algorithm per submission; results come back in submission order)
    /// and moves remote plans into the active set.
    fn plan_admissions(&self, admitted: Vec<Submission>, active: &mut Vec<ActiveQuery>) {
        if admitted.is_empty() {
            return;
        }
        for sub in &admitted {
            self.obs.observe(
                "fedra_sched_queue_wait_ns",
                sub.submitted_at.elapsed().as_nanos() as u64,
            );
        }
        let planned: Vec<Option<(QueryPlan, Box<dyn FraAlgorithm>)>> =
            self.pool.try_map(&admitted, |_worker, sub| {
                let alg = (self.factory)(sub.seed);
                let plan = alg.plan_with(&self.federation, &sub.query, &self.obs);
                (plan, alg)
            });
        for (sub, slot) in admitted.into_iter().zip(planned) {
            let Some((plan, alg)) = slot else {
                // The pool worker panicked planning this query; answer the
                // ticket the same way the batch engine answers its slot.
                sub.cell.deliver(Err(FraError::Internal {
                    message: "scheduler worker panicked while planning this query".into(),
                }));
                continue;
            };
            let (leg, done) = match plan {
                QueryPlan::Ready(outcome) => {
                    self.obs.inc("fedra_plan_ready_total");
                    (None, Some(outcome))
                }
                QueryPlan::SingleSilo(RemotePlan { order, request }) => {
                    self.obs.inc("fedra_plan_remote_total");
                    (
                        Some(RemoteLeg {
                            order,
                            request,
                            attempt: 0,
                            retried: 0,
                        }),
                        None,
                    )
                }
            };
            active.push(ActiveQuery {
                id: sub.id,
                query: sub.query,
                class: sub.class,
                alg,
                leg,
                rounds: 0,
                submitted_at: sub.submitted_at,
                deadline: sub.deadline,
                cell: sub.cell,
                done,
            });
        }
    }

    /// One scatter–gather round over every live query: group by current
    /// candidate silo, one multiplexed frame per silo (expired riders get
    /// their own dead-on-arrival frame the silo sheds byte-countedly),
    /// then resolve replies by correlation id.
    fn pump_frames(&self, active: &mut [ActiveQuery]) {
        self.skip_disallowed_candidates(active);
        // Group riders by (candidate silo, expired?). Wall-clock: the
        // deadline decides when to give up, never what a query computes.
        let now = Instant::now();
        let mut groups: BTreeMap<(SiloId, bool), Vec<usize>> = BTreeMap::new();
        for (i, q) in active.iter().enumerate() {
            if q.done.is_some() || q.leg.is_none() {
                continue;
            }
            let expired = q.deadline.is_some_and(|d| d <= now);
            let Some(leg) = q.leg.as_ref() else { continue };
            groups
                .entry((leg.order[leg.attempt], expired))
                .or_default()
                .push(i);
        }
        if groups.is_empty() {
            return;
        }
        // Scatter: begin every frame before gathering any reply.
        let frames: Vec<TickFrame> = groups
            .into_iter()
            .map(|((silo, expired), riders)| {
                let deadline = frame_deadline(active, &riders, expired);
                let tagged: Vec<(u64, &Request)> = riders
                    .iter()
                    .filter_map(|&i| {
                        active[i]
                            .leg
                            .as_ref()
                            .map(|leg| (active[i].id, &leg.request))
                    })
                    .collect();
                if self.obs.is_enabled() {
                    self.obs
                        .observe("fedra_sched_frame_riders", riders.len() as u64);
                    for _ in &riders {
                        self.obs
                            .inc(&labeled("fedra_silo_requests_total", "silo", silo));
                    }
                }
                let begun = Instant::now();
                // A lost leg (tagged shorter than riders) would desync the
                // correlation zip; degrade the whole frame instead.
                let batch = if tagged.len() == riders.len() {
                    self.federation
                        .channel(silo)
                        .begin_tagged_batch_with(&tagged, deadline)
                } else {
                    Err(TransportError::Disconnected { silo })
                };
                TickFrame {
                    silo,
                    riders,
                    begun,
                    deadline,
                    expired,
                    batch,
                }
            })
            .collect();
        // Every begun frame costs its riders one attempt round.
        for frame in &frames {
            for &i in &frame.riders {
                active[i].rounds += 1;
            }
        }
        // Gather, routing each reply back by correlation id.
        let by_id: HashMap<u64, usize> =
            active.iter().enumerate().map(|(i, q)| (q.id, i)).collect();
        let mut to_finish: Vec<(usize, SiloId, fedra_federation::Response)> = Vec::new();
        for frame in frames {
            self.gather_frame(active, &by_id, frame, &mut to_finish);
        }
        self.finish_resolved(active, to_finish);
    }

    /// Advances queries whose current candidate the breaker disallows,
    /// degrading those that run out of candidates — the scheduler-side
    /// mirror of `attempt_silo`'s health check.
    fn skip_disallowed_candidates(&self, active: &mut [ActiveQuery]) {
        for q in active.iter_mut() {
            if q.done.is_some() {
                continue;
            }
            let Some(leg) = q.leg.as_mut() else { continue };
            while leg.attempt < leg.order.len()
                && !self.federation.health().may_call(leg.order[leg.attempt])
            {
                leg.attempt += 1;
                leg.retried = 0;
                self.obs.inc("fedra_resamples_total");
            }
            if leg.attempt >= leg.order.len() {
                self.obs.inc("fedra_degraded_total");
                q.done = Some(q.alg.finish_degraded(&self.federation, &q.query, q.rounds));
            }
        }
    }

    /// Resolves one frame: success feeds the finish stage, refusals retry
    /// or advance candidates, deadline sheds mark riders shed.
    fn gather_frame(
        &self,
        active: &mut [ActiveQuery],
        by_id: &HashMap<u64, usize>,
        frame: TickFrame,
        to_finish: &mut Vec<(usize, SiloId, fedra_federation::Response)>,
    ) {
        let outcome = match frame.batch {
            Ok(pending) => {
                if frame.expired {
                    // Wait (briefly) for the silo's byte-counted refusal;
                    // the riders are shed either way.
                    pending.wait_deadline(frame.begun + SHED_GRACE)
                } else {
                    match frame.deadline {
                        Some(d) => pending.wait_deadline(d),
                        None => pending.wait(),
                    }
                }
            }
            Err(e) => Err(e),
        };
        match outcome {
            Ok(items) => {
                note_transition(
                    &self.obs,
                    self.federation
                        .health()
                        .record_success(frame.silo, frame.begun.elapsed()),
                );
                for (tag, item) in items {
                    let Some(&i) = by_id.get(&tag) else { continue };
                    if active[i].done.is_some() {
                        continue;
                    }
                    match item {
                        Ok(response) => to_finish.push((i, frame.silo, response)),
                        Err(error) if error.is_deadline() => {
                            if self.obs.is_enabled() {
                                self.obs.inc(&labeled(
                                    "fedra_deadline_missed_total",
                                    "silo",
                                    frame.silo,
                                ));
                            }
                            self.shed(&mut active[i]);
                        }
                        Err(error) => {
                            note_transition(
                                &self.obs,
                                self.federation.health().record_failure(frame.silo),
                            );
                            self.retry_or_advance(&mut active[i], &error);
                        }
                    }
                }
            }
            Err(error) if frame.expired && error.is_deadline() => {
                // The dead-on-arrival frame was shed as intended (or its
                // grace window lapsed). The silo did exactly what the
                // envelope asked: no health failure is recorded.
                for &i in &frame.riders {
                    if active[i].done.is_none() {
                        self.shed(&mut active[i]);
                    }
                }
            }
            Err(error) => {
                note_transition(
                    &self.obs,
                    self.federation.health().record_failure(frame.silo),
                );
                if error.is_deadline() {
                    // The frame deadline is the max over riders, so a
                    // frame-level miss means every rider's budget is
                    // spent: shed them all.
                    if self.obs.is_enabled() {
                        self.obs
                            .inc(&labeled("fedra_deadline_missed_total", "silo", frame.silo));
                    }
                    for &i in &frame.riders {
                        if active[i].done.is_none() {
                            self.shed(&mut active[i]);
                        }
                    }
                } else {
                    for &i in &frame.riders {
                        if active[i].done.is_none() {
                            self.retry_or_advance(&mut active[i], &error);
                        }
                    }
                }
            }
        }
    }

    /// Transient refusals retry the same candidate (next tick) up to the
    /// policy budget; anything else advances to the next candidate,
    /// degrading when none remain — mirrors the batch engine's loop.
    fn retry_or_advance(&self, q: &mut ActiveQuery, error: &TransportError) {
        let retries = self.federation.call_policy().retries;
        let Some(leg) = q.leg.as_mut() else { return };
        if error.is_retryable() && leg.retried < retries {
            leg.retried += 1;
            self.obs.inc("fedra_retries_total");
            return;
        }
        self.obs.inc("fedra_resamples_total");
        leg.attempt += 1;
        leg.retried = 0;
        if leg.attempt >= leg.order.len() {
            self.obs.inc("fedra_degraded_total");
            q.done = Some(q.alg.finish_degraded(&self.federation, &q.query, q.rounds));
        }
    }

    /// Marks a rider shed (deadline spent); counted at delivery.
    fn shed(&self, q: &mut ActiveQuery) {
        q.done = Some(Err(FraError::Shed {
            class: self.classes[q.class].name.clone(),
        }));
    }

    /// Finishes this tick's successful replies on the worker pool.
    /// `finish_with` consumes no RNG (the plan did), so parallel finish
    /// order cannot change any query's value.
    fn finish_resolved(
        &self,
        active: &mut [ActiveQuery],
        to_finish: Vec<(usize, SiloId, fedra_federation::Response)>,
    ) {
        if to_finish.is_empty() {
            return;
        }
        let outcomes: Vec<Option<Result<QueryResult, FraError>>> =
            self.pool
                .try_map(&to_finish, |_worker, (i, silo, response)| {
                    let q = &active[*i];
                    if self.obs.is_enabled() {
                        self.obs
                            .inc(&labeled("fedra_sampled_silo_total", "silo", *silo));
                    }
                    q.alg.finish_with(
                        &self.federation,
                        &q.query,
                        *silo,
                        response.clone(),
                        q.rounds,
                        &self.obs,
                    )
                });
        for ((i, _, _), outcome) in to_finish.into_iter().zip(outcomes) {
            active[i].done = Some(outcome.unwrap_or_else(|| {
                Err(FraError::Internal {
                    message: "scheduler worker panicked while finishing this query".into(),
                })
            }));
        }
    }

    /// Delivers every resolved query to its ticket and drops it from the
    /// active set, recording completion/shed counters and end-to-end
    /// latency.
    fn deliver_done(&self, active: &mut Vec<ActiveQuery>) {
        active.retain_mut(|q| {
            let Some(outcome) = q.done.take() else {
                return true;
            };
            let class = &self.classes[q.class].name;
            if matches!(outcome, Err(FraError::Shed { .. })) {
                if self.obs.is_enabled() {
                    self.obs.inc(&labeled("fedra_shed_total", "class", class));
                }
                self.obs.inc("fedra_shed_expired_total");
            } else if self.obs.is_enabled() {
                self.obs
                    .inc(&labeled("fedra_sched_completed_total", "class", class));
            }
            if let Ok(r) = &outcome {
                crate::algorithm::note_coverage(&self.obs, r);
            }
            self.obs.observe(
                "fedra_sched_latency_ns",
                q.submitted_at.elapsed().as_nanos() as u64,
            );
            q.cell.deliver(outcome);
            false
        });
    }
}

/// The envelope deadline for one coalesced frame: live frames take the
/// *max* over riders (the frame must never shed a rider that still has
/// budget; each rider's own deadline is enforced per-reply), expired
/// frames take the earliest (already past) deadline so the silo sheds
/// them on arrival.
fn frame_deadline(active: &[ActiveQuery], riders: &[usize], expired: bool) -> Option<Instant> {
    if expired {
        return riders.iter().filter_map(|&i| active[i].deadline).min();
    }
    let mut max: Option<Instant> = None;
    for &i in riders {
        match active[i].deadline {
            // One unbounded rider makes the frame unbounded.
            None => return None,
            Some(d) => max = Some(max.map_or(d, |m| m.max(d))),
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::IidEst;
    use crate::QueryEngine;
    use fedra_federation::FederationBuilder;
    use fedra_index::AggFunc;
    use fedra_workload::{QueryGenerator, WorkloadSpec};

    fn stand_up(seed: u64) -> (Arc<Federation>, Vec<FraQuery>) {
        let spec = WorkloadSpec::default()
            .with_total_objects(4_000)
            .with_silos(4)
            .with_seed(seed);
        let dataset = spec.generate();
        let all = dataset.all_objects();
        let bounds = dataset.bounds();
        let federation = FederationBuilder::new(bounds)
            .grid_cell_len(1.0)
            .build(dataset.into_partitions());
        let mut generator = QueryGenerator::new(&all, seed ^ 0x5EED);
        let queries = generator
            .circles(2.0, 24)
            .iter()
            .map(|r| FraQuery::new(*r, AggFunc::Count))
            .collect();
        (Arc::new(federation), queries)
    }

    fn factory(seed: u64) -> Box<dyn FraAlgorithm> {
        Box::new(IidEst::new(seed))
    }

    #[test]
    fn scheduled_results_match_serial_execution() {
        let (federation, queries) = stand_up(71);
        let obs = Arc::new(ObsContext::new());
        let sched = QueryScheduler::start(
            Arc::clone(&federation),
            factory,
            SchedulerConfig::default(),
            Arc::clone(&obs),
        );
        let tickets: Vec<QueryTicket> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| sched.submit(*q, 1000 + i as u64, 0).expect("admitted"))
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let got = ticket.wait().expect("scheduled query answers");
            let alg = factory(1000 + i as u64);
            let serial = QueryEngine::with_workers(alg.as_ref(), 1).execute_batch_with(
                &federation,
                &queries[i..=i],
                &ObsContext::new(),
            );
            let want = serial.results[0].as_ref().expect("serial query answers");
            assert_eq!(got.value.to_bits(), want.value.to_bits());
            assert_eq!(&got, want);
        }
        sched.shutdown();
    }

    #[test]
    fn queue_full_sheds_at_submit() {
        let (federation, queries) = stand_up(72);
        let obs = Arc::new(ObsContext::new());
        // Capacity 0: the front door sheds everything.
        let config = SchedulerConfig {
            classes: vec![ClassPolicy::unbounded("tiny", 0)],
            ..SchedulerConfig::default()
        };
        let sched = QueryScheduler::start(Arc::clone(&federation), factory, config, obs);
        let err = sched.submit(queries[0], 7, 0).expect_err("queue full");
        assert_eq!(
            err,
            SubmitError::QueueFull {
                class: "tiny".into()
            }
        );
        assert_eq!(
            sched.submit(queries[0], 7, 9).expect_err("bad class"),
            SubmitError::UnknownClass { class: 9 }
        );
    }

    #[test]
    fn expired_submissions_are_shed_byte_counted() {
        let (federation, queries) = stand_up(73);
        let obs = Arc::new(ObsContext::new());
        // A zero deadline expires every query in queue; the scheduler
        // still ships each one as a dead-on-arrival frame the silo sheds.
        let config = SchedulerConfig {
            classes: vec![ClassPolicy::with_deadline("rt", 64, Duration::ZERO)],
            ..SchedulerConfig::default()
        };
        let before = federation.query_comm();
        let sched =
            QueryScheduler::start(Arc::clone(&federation), factory, config, Arc::clone(&obs));
        let tickets: Vec<QueryTicket> = queries
            .iter()
            .map(|q| sched.submit(*q, 5, 0).expect("admitted"))
            .collect();
        let mut sheds = 0;
        for ticket in tickets {
            match ticket.wait() {
                Err(FraError::Shed { class }) => {
                    assert_eq!(class, "rt");
                    sheds += 1;
                }
                other => panic!("expired query should shed, got {other:?}"),
            }
        }
        assert_eq!(sheds, queries.len());
        // The sheds travelled: byte-counted rounds, not silent drops.
        let delta = federation.query_comm().since(&before);
        assert!(delta.rounds > 0, "shed frames should be byte-counted");
        sched.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let (federation, queries) = stand_up(74);
        let obs = Arc::new(ObsContext::new());
        let sched = QueryScheduler::start(
            Arc::clone(&federation),
            factory,
            SchedulerConfig::default(),
            obs,
        );
        let tickets: Vec<QueryTicket> = queries
            .iter()
            .map(|q| sched.submit(*q, 3, 0).expect("admitted"))
            .collect();
        sched.shutdown();
        for ticket in tickets {
            ticket.wait().expect("drained on shutdown");
        }
    }

    #[test]
    fn ticket_ids_are_unique_and_returned() {
        let (federation, queries) = stand_up(75);
        let obs = Arc::new(ObsContext::new());
        let sched = QueryScheduler::start(
            Arc::clone(&federation),
            factory,
            SchedulerConfig::default(),
            obs,
        );
        let a = sched.submit(queries[0], 1, 0).expect("admitted");
        let b = sched.submit(queries[1], 2, 0).expect("admitted");
        assert_ne!(a.id(), b.id());
        a.wait().expect("answers");
        b.wait().expect("answers");
    }
}
