//! Statistical validation of the Sec. 6 guarantees on live federations:
//! measured ε-violation rates must stay below the analytic bounds, and
//! the qualitative monotonicities the theorems predict must show up.
//!
//! All tests use fixed seeds and generous margins — they are regression
//! tripwires for estimator bias, not tight statistical hypothesis tests.

use fedra_core::theory;
use fedra_core::{AccuracyParams, Exact, FraAlgorithm, FraQuery, NonIidEstLsr};
use fedra_federation::{Federation, FederationBuilder, LocalMode, Request, Response};
use fedra_geo::{Point, Rect, SpatialObject};
use fedra_index::histogram::MinSkewConfig;
use fedra_index::AggFunc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn federation(m: usize, per_silo: usize, seed: u64) -> Federation {
    let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let mut rng = StdRng::seed_from_u64(seed);
    let partitions: Vec<Vec<SpatialObject>> = (0..m)
        .map(|_| {
            (0..per_silo)
                .map(|_| {
                    // Mild two-cluster skew shared by all silos (IID).
                    let (x, y): (f64, f64) = if rng.random_range(0..10) < 6 {
                        (
                            40.0 + rng.random_range(-20.0..20.0),
                            40.0 + rng.random_range(-20.0..20.0),
                        )
                    } else {
                        (rng.random_range(0.0..100.0), rng.random_range(0.0..100.0))
                    };
                    SpatialObject::at(x.clamp(0.0, 100.0), y.clamp(0.0, 100.0), 1.0)
                })
                .collect()
        })
        .collect();
    FederationBuilder::new(bounds)
        .grid_cell_len(4.0)
        .histogram_config(MinSkewConfig {
            resolution: 16,
            budget: 16,
        })
        .build(partitions)
}

/// Local LSR error at one silo, over many queries, vs the Lemma-1 target.
#[test]
fn lemma1_violation_rate_stays_below_delta_with_margin() {
    let fed = federation(3, 30_000, 1);
    let (epsilon, delta) = (0.25, 0.05);
    let mut rng = StdRng::seed_from_u64(2);
    let mut violations = 0usize;
    let mut counted = 0usize;
    for _ in 0..150 {
        let q = fedra_geo::Range::circle(
            Point::new(rng.random_range(25.0..55.0), rng.random_range(25.0..55.0)),
            10.0,
        );
        let exact = match fed
            .call(
                0,
                &Request::Aggregate {
                    range: q,
                    mode: LocalMode::Exact,
                },
            )
            .unwrap()
        {
            Response::Agg(a) => a.count,
            other => panic!("unexpected {other:?}"),
        };
        // The Lemma-1 guarantee needs enough expected in-range samples;
        // skip sparse queries (their level clamps to 0 and they are exact
        // anyway at small sum0).
        if exact < 2_000.0 {
            continue;
        }
        let sum0 = fedra_core::helpers::rough_count(&fed, &q);
        let approx = match fed
            .call(
                0,
                &Request::Aggregate {
                    range: q,
                    mode: LocalMode::Lsr {
                        epsilon,
                        delta,
                        sum0,
                    },
                },
            )
            .unwrap()
        {
            Response::Agg(a) => a.count,
            other => panic!("unexpected {other:?}"),
        };
        if (approx - exact).abs() / exact > epsilon {
            violations += 1;
        }
        counted += 1;
    }
    assert!(counted >= 50, "too few dense queries: {counted}");
    let rate = violations as f64 / counted as f64;
    // δ = 5 %; allow binomial noise up to 3× the bound before tripping.
    assert!(
        rate <= 3.0 * delta,
        "Lemma-1 violation rate {rate} vs δ = {delta} ({violations}/{counted})"
    );
}

#[test]
fn end_to_end_error_shrinks_as_radius_grows() {
    // Theorem 1/3: the failure bound tightens as ans/sum₀ → 1, i.e. with
    // growing radius. The measured MRE must be (weakly) decreasing across
    // a 3-point radius sweep, averaged over enough queries.
    let fed = federation(4, 20_000, 3);
    let exact = Exact::new();
    let mut mres = Vec::new();
    for (i, radius) in [4.0, 8.0, 16.0].into_iter().enumerate() {
        let alg = NonIidEstLsr::new(40 + i as u64, AccuracyParams::default());
        let mut rng = StdRng::seed_from_u64(50 + i as u64);
        let mut err = 0.0;
        let mut counted = 0;
        for _ in 0..40 {
            let q = FraQuery::circle(
                Point::new(rng.random_range(30.0..50.0), rng.random_range(30.0..50.0)),
                radius,
                AggFunc::Count,
            );
            let t = exact.execute(&fed, &q).value;
            if t < 100.0 {
                continue;
            }
            err += (alg.execute(&fed, &q).value - t).abs() / t;
            counted += 1;
        }
        mres.push(err / counted as f64);
    }
    assert!(mres[2] < mres[0], "MRE should fall with radius: {mres:?}");
}

#[test]
fn epsilon_monotonicity_of_lsr_error() {
    // Fig. 6a's mechanism: larger ε → coarser levels → larger measured
    // error, holding everything else fixed.
    let fed = federation(4, 25_000, 4);
    let exact = Exact::new();
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<FraQuery> = (0..40)
        .map(|_| {
            FraQuery::circle(
                Point::new(rng.random_range(30.0..50.0), rng.random_range(30.0..50.0)),
                8.0,
                AggFunc::Count,
            )
        })
        .collect();
    let truth: Vec<f64> = queries
        .iter()
        .map(|q| exact.execute(&fed, q).value)
        .collect();
    let mre = |epsilon: f64, seed: u64| -> f64 {
        let alg = NonIidEstLsr::new(seed, AccuracyParams::new(epsilon, 0.01));
        queries
            .iter()
            .zip(&truth)
            .filter(|(_, &t)| t > 0.0)
            .map(|(q, &t)| (alg.execute(&fed, q).value - t).abs() / t)
            .sum::<f64>()
            / queries.len() as f64
    };
    let tight = mre(0.05, 6);
    let loose = mre(0.4, 7);
    assert!(
        loose > tight,
        "ε = 0.4 error ({loose}) must exceed ε = 0.05 error ({tight})"
    );
}

#[test]
fn selected_levels_scale_with_query_density() {
    // Denser queries (bigger sum₀) earn deeper levels: verify on reported
    // metadata from the end-to-end algorithm.
    let fed = federation(3, 30_000, 8);
    let alg = NonIidEstLsr::new(9, AccuracyParams::new(0.25, 0.05));
    let small = alg.execute(
        &fed,
        &FraQuery::circle(Point::new(40.0, 40.0), 3.0, AggFunc::Count),
    );
    let large = alg.execute(
        &fed,
        &FraQuery::circle(Point::new(40.0, 40.0), 25.0, AggFunc::Count),
    );
    assert!(
        large.lsr_level.unwrap() > small.lsr_level.unwrap(),
        "levels: small-radius {:?} vs large-radius {:?}",
        small.lsr_level,
        large.lsr_level
    );
}

#[test]
fn theorem_bound_function_is_sane_against_measurements() {
    // The analytic bound must *upper-bound* the measured violation rate
    // at matched parameters (it is loose, so the margin is large).
    let fed = federation(4, 15_000, 10);
    let exact = Exact::new();
    let epsilon = 0.3;
    let alg = NonIidEstLsr::new(11, AccuracyParams::new(epsilon, 0.01));
    let mut rng = StdRng::seed_from_u64(12);
    let mut violations = 0usize;
    let mut bound_sum = 0.0;
    let mut counted = 0usize;
    for _ in 0..60 {
        let q = FraQuery::circle(
            Point::new(rng.random_range(30.0..50.0), rng.random_range(30.0..50.0)),
            10.0,
            AggFunc::Count,
        );
        let t = exact.execute(&fed, &q).value;
        if t < 50.0 {
            continue;
        }
        let est = alg.execute(&fed, &q).value;
        if (est - t).abs() / t > epsilon {
            violations += 1;
        }
        let sum0 = fedra_core::helpers::rough_count(&fed, &q.range);
        bound_sum += theory::theorem_failure_bound(epsilon, t, sum0);
        counted += 1;
    }
    let measured = violations as f64 / counted as f64;
    let mean_bound = bound_sum / counted as f64;
    assert!(
        measured <= mean_bound + 1e-9,
        "measured violation rate {measured} exceeds the analytic bound {mean_bound}"
    );
}
