//! The paper's running example (Examples 1–4), reconstructed so every
//! number is hand-checkable.
//!
//! Setup mirrors Fig. 1: a two-silo federation over [0, 10]², grid length
//! 2.5 (16 cells), and the FRA query SUM over the circle centered at
//! (4, 6) with radius 3. The object set is chosen so the quantities the
//! paper computes come out exactly as in Example 3:
//!
//! * the circle intersects the 3×3 block of cells with columns 0–2 and
//!   rows 1–3;
//! * silo 2's partial answer (SUM within R) is `res_k = 4`;
//! * silo 2's block aggregate is `sum_k = 11`;
//! * the federation block aggregate is `sum₀ = 21`;
//! * hence IID-est with silo 2 sampled returns `21 × 4/11 ≈ 7.64`
//!   (the paper's "7.6").

use fedra_core::{Exact, FraAlgorithm, FraQuery, IidEst, NonIidEst};
use fedra_federation::{FederationBuilder, LocalMode, Request, Response};
use fedra_geo::{intersection_area, Point, Range, Rect, SpatialObject};
use fedra_index::histogram::MinSkewConfig;
use fedra_index::AggFunc;

fn silo1_objects() -> Vec<SpatialObject> {
    vec![
        // Inside R (SUM contribution 6):
        SpatialObject::at(2.0, 4.0, 2.0),
        SpatialObject::at(5.0, 8.0, 3.0),
        SpatialObject::at(1.5, 6.0, 1.0),
        // In the 3×3 block but outside R (block SUM 10 total):
        SpatialObject::at(6.5, 9.5, 4.0),
        // Outside the block:
        SpatialObject::at(8.0, 5.0, 1.0),
        SpatialObject::at(9.0, 2.0, 2.0),
        SpatialObject::at(6.0, 1.0, 3.0),
        SpatialObject::at(8.0, 8.0, 1.0),
        SpatialObject::at(9.5, 0.5, 2.0),
        SpatialObject::at(3.0, 1.0, 5.0),
    ]
}

fn silo2_objects() -> Vec<SpatialObject> {
    vec![
        // Inside R (res_k = 1 + 1 + 2 = 4):
        SpatialObject::at(3.0, 6.0, 1.0),
        SpatialObject::at(4.0, 7.0, 1.0),
        SpatialObject::at(5.0, 5.5, 2.0),
        // In the block but outside R (sum_k = 4 + 4 + 3 = 11):
        SpatialObject::at(1.0, 9.0, 4.0),
        SpatialObject::at(7.0, 3.0, 3.0),
        // Outside the block (includes the paper's (2, 2) object with
        // measure 7 from Example 2):
        SpatialObject::at(2.0, 2.0, 7.0),
        SpatialObject::at(9.0, 9.0, 2.0),
        SpatialObject::at(8.0, 1.0, 5.0),
    ]
}

fn example_federation() -> fedra_federation::Federation {
    FederationBuilder::new(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)))
        .grid_cell_len(2.5)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .message_overhead(0)
        .build(vec![silo1_objects(), silo2_objects()])
}

fn example_query() -> Range {
    Range::circle(Point::new(4.0, 6.0), 3.0)
}

#[test]
fn example1_exact_answer() {
    // Exact SUM within R: silo 1 contributes 6, silo 2 contributes 4.
    let fed = example_federation();
    let r = Exact::new().execute(&fed, &FraQuery::new(example_query(), AggFunc::Sum));
    assert_eq!(r.value, 10.0);
}

#[test]
fn example2_grid_construction() {
    // Example 2: the bottom-left cell of g₁ is empty; in g₂ it holds the
    // (2, 2) object with measure 7; g₀ merges them.
    let fed = example_federation();
    let spec = *fed.merged_grid().spec();
    assert_eq!(spec.num_cells(), 16);
    let bottom_left = spec.cell_id(0, 0);
    assert_eq!(fed.silo_grid(0).cell(bottom_left).count, 0.0);
    assert_eq!(fed.silo_grid(0).cell(bottom_left).sum, 0.0);
    assert_eq!(fed.silo_grid(1).cell(bottom_left).count, 1.0);
    assert_eq!(fed.silo_grid(1).cell(bottom_left).sum, 7.0);
    assert_eq!(fed.merged_grid().cell(bottom_left).count, 1.0);
    assert_eq!(fed.merged_grid().cell(bottom_left).sum, 7.0);
}

#[test]
fn example3_iid_est_arithmetic() {
    // The block sums the paper computes in Example 3 (for SUM here):
    // sum₀ = 21, sum_k(silo 2) = 11, res_k(silo 2) = 4 → 21·(4/11).
    let fed = example_federation();
    let q = example_query();

    let sum0 = fed.merged_prefix().aggregate_intersecting(&q);
    let sum_k = fed.silo_prefix(1).aggregate_intersecting(&q);
    assert_eq!(sum0.sum, 21.0);
    assert_eq!(sum_k.sum, 11.0);

    let res_k = match fed
        .call(
            1,
            &Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            },
        )
        .unwrap()
    {
        Response::Agg(a) => a,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(res_k.sum, 4.0);

    let estimate_if_silo2 = sum0.sum * res_k.sum / sum_k.sum;
    assert!((estimate_if_silo2 - 7.636363636363637).abs() < 1e-12);

    // The published algorithm must return exactly one of the two per-silo
    // estimates, whichever silo its seed samples.
    let sum_k1 = fed.silo_prefix(0).aggregate_intersecting(&q);
    let res_k1 = match fed
        .call(
            0,
            &Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            },
        )
        .unwrap()
    {
        Response::Agg(a) => a,
        other => panic!("unexpected {other:?}"),
    };
    let estimate_if_silo1 = sum0.sum * res_k1.sum / sum_k1.sum;
    let fra_query = FraQuery::new(q, AggFunc::Sum);
    let mut seen = std::collections::BTreeSet::new();
    for seed in 0..16 {
        let r = IidEst::new(seed).execute(&fed, &fra_query);
        let is_s1 = (r.value - estimate_if_silo1).abs() < 1e-12;
        let is_s2 = (r.value - estimate_if_silo2).abs() < 1e-12;
        assert!(is_s1 || is_s2, "unexpected IID-est value {}", r.value);
        seen.insert(r.sampled_silo.unwrap());
    }
    assert_eq!(seen.len(), 2, "sixteen seeds should sample both silos");
}

#[test]
fn example4_noniid_est_arithmetic() {
    // NonIID-est with silo k sampled: covered cells contribute their g₀
    // aggregates exactly; each boundary cell i contributes
    // res_i^k · g₀[i]/g_k[i]. Recompute the whole estimate from raw index
    // state and require the algorithm to match bit for bit.
    let fed = example_federation();
    let q = example_query();
    let spec = *fed.merged_grid().spec();
    let cls = spec.classify(&q);
    // The central cell (1, 2) is fully covered; the rest of the 3×3 block
    // is boundary.
    assert_eq!(cls.covered, vec![spec.cell_id(1, 2)]);
    assert_eq!(cls.len(), 9);

    for silo in 0..2 {
        let contributions = match fed
            .call(
                silo,
                &Request::CellContributions {
                    range: q,
                    cells: cls.boundary.clone(),
                    mode: LocalMode::Exact,
                },
            )
            .unwrap()
        {
            Response::AggVec(v) => v,
            other => panic!("unexpected {other:?}"),
        };
        let mut expected = fed.merged_grid().cell(spec.cell_id(1, 2)).sum;
        for (cell, res_i) in cls.boundary.iter().zip(&contributions) {
            let g0 = fed.merged_grid().cell(*cell).sum;
            let gk = fed.silo_grid(silo).cell(*cell).sum;
            if gk.abs() < f64::EPSILON {
                let rect = spec.cell_rect_of(*cell);
                expected += g0 * intersection_area(&q, &rect) / rect.area();
            } else {
                expected += g0 * res_i.sum / gk;
            }
        }

        // Drive the algorithm until it samples this silo.
        let fra_query = FraQuery::new(q, AggFunc::Sum);
        let mut matched = false;
        for seed in 0..32 {
            let r = NonIidEst::new(seed).execute(&fed, &fra_query);
            if r.sampled_silo == Some(silo) {
                assert!(
                    (r.value - expected).abs() < 1e-9,
                    "silo {silo}: algorithm {} vs hand-computed {expected}",
                    r.value
                );
                matched = true;
                break;
            }
        }
        assert!(matched, "no seed sampled silo {silo}");
    }
}

#[test]
fn both_estimators_stay_in_the_examples_ballpark() {
    // On 18 objects any estimator is noisy; the paper's point is that
    // both land in the right ballpark of the exact answer (10) from one
    // silo contact. (Statistical superiority of NonIID-est is asserted at
    // realistic scale in `sampling::tests` and the integration tests.)
    let fed = example_federation();
    let q = FraQuery::new(example_query(), AggFunc::Sum);
    let exact = Exact::new().execute(&fed, &q).value;
    for seed in 0..24 {
        let iid = IidEst::new(seed).execute(&fed, &q).value;
        let noniid = NonIidEst::new(seed).execute(&fed, &q).value;
        assert!((iid - exact).abs() < 0.6 * exact, "IID {iid} vs {exact}");
        assert!(
            (noniid - exact).abs() < 0.6 * exact,
            "NonIID {noniid} vs {exact}"
        );
    }
}

#[test]
fn communication_cost_of_the_example() {
    // With zero envelope overhead the example's byte counts are exactly
    // auditable: IID-est ships one Aggregate back; NonIID-est ships one
    // Aggregate per boundary cell (8 of them).
    let fed = example_federation();
    let q = FraQuery::new(example_query(), AggFunc::Sum);

    fed.reset_query_comm();
    IidEst::new(0).execute(&fed, &q);
    let iid = fed.query_comm();
    // up: tag(1) + range(25) + mode(1) = 27; down: tag(1) + agg(24) = 25.
    assert_eq!(iid.bytes_up, 27);
    assert_eq!(iid.bytes_down, 25);

    fed.reset_query_comm();
    NonIidEst::new(0).execute(&fed, &q);
    let noniid = fed.query_comm();
    // up adds the 8 boundary cell ids (4 B each) + vec len (4 B);
    // down carries 8 aggregates + vec len.
    assert_eq!(noniid.bytes_up, 27 + 4 + 32);
    assert_eq!(noniid.bytes_down, 1 + 4 + 8 * 24);
}
