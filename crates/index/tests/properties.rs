//! Property-based tests for the index crate: every index must agree with
//! the brute-force oracle on arbitrary data and arbitrary query ranges.

use fedra_geo::{Point, Range, Rect, SpatialObject};
use fedra_index::grid::{GridIndex, GridSpec, PrefixGrid};
use fedra_index::histogram::{EquiWidthHistogram, MinSkewConfig, MinSkewHistogram};
use fedra_index::lsr::LsrForest;
use fedra_index::quadtree::{QuadTree, QuadTreeConfig};
use fedra_index::rtree::{RTree, RTreeConfig};
use fedra_index::Aggregate;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIDE: f64 = 64.0;

fn objects() -> impl Strategy<Value = Vec<SpatialObject>> {
    proptest::collection::vec(
        (0.0f64..SIDE, 0.0f64..SIDE, -5.0f64..5.0).prop_map(|(x, y, m)| SpatialObject::at(x, y, m)),
        0..300,
    )
}

fn query() -> impl Strategy<Value = Range> {
    prop_oneof![
        (-8.0f64..SIDE + 8.0, -8.0f64..SIDE + 8.0, 0.0f64..SIDE)
            .prop_map(|(x, y, r)| Range::circle(Point::new(x, y), r)),
        (
            -8.0f64..SIDE + 8.0,
            -8.0f64..SIDE + 8.0,
            -8.0f64..SIDE + 8.0,
            -8.0f64..SIDE + 8.0
        )
            .prop_map(|(x0, y0, x1, y1)| Range::rect(Point::new(x0, y0), Point::new(x1, y1))),
    ]
}

fn brute(objs: &[SpatialObject], range: &Range) -> Aggregate {
    objs.iter()
        .filter(|o| range.contains_point(&o.location))
        .fold(Aggregate::ZERO, |a, o| a.merge(&Aggregate::of(o)))
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rtree_aggregate_matches_bruteforce(objs in objects(), q in query(), fanout in 2usize..32) {
        let tree = RTree::bulk_load(objs.clone(), RTreeConfig::with_fanout(fanout));
        let got = tree.aggregate(&q);
        let want = brute(&objs, &q);
        prop_assert_eq!(got.count, want.count);
        prop_assert!(close(got.sum, want.sum));
        prop_assert!(close(got.sum_sqr, want.sum_sqr));
    }

    #[test]
    fn rtree_clipped_matches_filter(objs in objects(), q in query(),
                                    cx in 0.0f64..SIDE, cy in 0.0f64..SIDE,
                                    w in 1.0f64..30.0, h in 1.0f64..30.0) {
        let tree = RTree::from_objects(&objs);
        let clip = Rect::new(Point::new(cx, cy), Point::new(cx + w, cy + h));
        let got = tree.aggregate_clipped(&q, &clip);
        let want = objs.iter()
            .filter(|o| q.contains_point(&o.location) && clip.contains_point(&o.location))
            .fold(Aggregate::ZERO, |a, o| a.merge(&Aggregate::of(o)));
        prop_assert_eq!(got.count, want.count);
        prop_assert!(close(got.sum, want.sum));
    }

    #[test]
    fn quadtree_matches_bruteforce(objs in objects(), q in query(),
                                   capacity in 1usize..64, max_depth in 2usize..20) {
        let region = Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE));
        let tree = QuadTree::build(region, objs.clone(), QuadTreeConfig { leaf_capacity: capacity, max_depth });
        let got = tree.aggregate(&q);
        let want = brute(&objs, &q);
        prop_assert_eq!(got.count, want.count);
        prop_assert!(close(got.sum, want.sum));
    }

    #[test]
    fn quadtree_agrees_with_rtree(objs in objects(), q in query()) {
        let quad = QuadTree::from_objects(&objs);
        let rtree = RTree::from_objects(&objs);
        prop_assert_eq!(quad.aggregate(&q).count, rtree.aggregate(&q).count);
    }

    #[test]
    fn grid_total_matches_bruteforce(objs in objects(), cell in 1.0f64..20.0) {
        let spec = GridSpec::new(Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)), cell);
        let grid = GridIndex::build(spec, &objs);
        let everything = brute(&objs, &Range::rect(Point::new(-1.0, -1.0), Point::new(SIDE + 1.0, SIDE + 1.0)));
        prop_assert_eq!(grid.total().count, everything.count);
        prop_assert!(close(grid.total().sum, everything.sum));
        prop_assert_eq!(grid.outside_count(), 0);
    }

    #[test]
    fn prefix_matches_naive_on_any_grid(objs in objects(), cell in 1.0f64..20.0, q in query()) {
        let spec = GridSpec::new(Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)), cell);
        let grid = GridIndex::build(spec, &objs);
        let prefix = PrefixGrid::build(&grid);
        let fast = prefix.aggregate_intersecting(&q);
        let slow = grid.aggregate_intersecting(&q);
        prop_assert!(close(fast.count, slow.count), "{} vs {}", fast.count, slow.count);
        prop_assert!(close(fast.sum, slow.sum));
    }

    #[test]
    fn classification_cells_cover_all_objects_in_range(objs in objects(), cell in 2.0f64..16.0, q in query()) {
        // Every object inside the range must live in a covered or boundary
        // cell — otherwise estimation would silently drop data.
        let spec = GridSpec::new(Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)), cell);
        let cls = spec.classify(&q);
        let relevant: std::collections::HashSet<u32> = cls.iter().collect();
        for o in &objs {
            if q.contains_point(&o.location) {
                let cell_id = spec.cell_of(&o.location).expect("object inside bounds");
                prop_assert!(
                    relevant.contains(&cell_id),
                    "object {:?} in range but its cell {} unclassified",
                    o.location,
                    cell_id
                );
            }
        }
    }

    #[test]
    fn grid_merge_is_cellwise_addition(a in objects(), b in objects(), cell in 2.0f64..16.0) {
        let spec = GridSpec::new(Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)), cell);
        let ga = GridIndex::build(spec, &a);
        let gb = GridIndex::build(spec, &b);
        let merged = GridIndex::merge([&ga, &gb]).unwrap();
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = GridIndex::build(spec, &all);
        for id in 0..spec.num_cells() as u32 {
            prop_assert_eq!(merged.cell(id).count, direct.cell(id).count);
            prop_assert!(close(merged.cell(id).sum, direct.cell(id).sum));
        }
    }

    #[test]
    fn lsr_level_zero_is_exact(objs in objects(), q in query(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let forest = LsrForest::from_objects(&objs, &mut rng);
        let exact = RTree::from_objects(&objs).aggregate(&q);
        prop_assert_eq!(forest.query_at_level(&q, 0).count, exact.count);
    }

    #[test]
    fn lsr_scaling_is_consistent(objs in objects(), seed in any::<u64>()) {
        // At any level, the whole-domain estimate equals the level's own
        // object count times 2^level.
        prop_assume!(!objs.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let forest = LsrForest::from_objects(&objs, &mut rng);
        let everything = Range::rect(Point::new(-1.0, -1.0), Point::new(SIDE + 1.0, SIDE + 1.0));
        for l in 0..forest.num_levels() {
            let est = forest.query_at_level(&everything, l);
            let level_count = forest.level(l).unwrap().len() as f64;
            prop_assert_eq!(est.count, level_count * (1u64 << l) as f64);
        }
    }

    #[test]
    fn equiwidth_histogram_is_exact_on_covered_ranges(objs in objects(), cell in 4.0f64..16.0) {
        // A range generously covering every bucket (the last grid column
        // can overhang the domain by up to one cell) has no fractional
        // boundary buckets, so the estimate is exact.
        let h = EquiWidthHistogram::build(
            Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)),
            cell,
            &objs,
        );
        let q = Range::rect(Point::new(-1.0, -1.0), Point::new(SIDE + 32.0, SIDE + 32.0));
        let want = brute(&objs, &q);
        prop_assert!(close(h.estimate(&q).count, want.count));
    }

    #[test]
    fn minskew_total_is_conserved(objs in objects(), budget in 1usize..64) {
        let h = MinSkewHistogram::build(
            Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)),
            MinSkewConfig { resolution: 16, budget },
            &objs,
        );
        prop_assert_eq!(h.total().count, objs.len() as f64);
        prop_assert!(h.num_buckets() <= budget.max(1));
        let area: f64 = h.buckets().iter().map(|b| b.rect.area()).sum();
        prop_assert!(close(area, SIDE * SIDE));
    }

    #[test]
    fn histogram_estimates_are_bounded_by_totals(objs in objects(), q in query()) {
        let h = MinSkewHistogram::build(
            Rect::new(Point::new(0.0, 0.0), Point::new(SIDE, SIDE)),
            MinSkewConfig { resolution: 16, budget: 32 },
            &objs,
        );
        let est = h.estimate(&q);
        prop_assert!(est.count >= -1e-9);
        prop_assert!(est.count <= objs.len() as f64 + 1e-9);
    }
}
