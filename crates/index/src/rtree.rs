//! An aggregate R-tree: exact range aggregation in O(log n).
//!
//! Every node carries the [`Aggregate`] of its whole subtree, so a range
//! aggregation query never has to visit the leaves of a subtree whose MBR
//! is fully covered by the query range — the classic *aR-tree* idea the
//! paper assumes when it says "spatial indices such as R-trees enable
//! O(log n)-time range aggregation queries" (Sec. 3).
//!
//! The tree is bulk-loaded with Sort-Tile-Recursive (STR) packing, which
//! is both the fastest way to build from a static partition (the federated
//! setting fixes partitions during query processing) and gives near-ideal
//! node utilization. The same structure serves as:
//!
//! * the silo-local index of the EXACT baseline,
//! * every level `T_i` of the LSR-Forest (Sec. 5),
//! * the ground-truth oracle in tests.

use serde::{Deserialize, Serialize};

use fedra_geo::{Range, Rect, RectRelation, SpatialObject};

use crate::pool::WorkerPool;
use crate::{Aggregate, IndexMemory};

/// R-tree build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RTreeConfig {
    /// Maximum entries per node (fanout). STR packs nodes to capacity.
    pub max_entries: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        // 16 balances depth against per-node scan cost for point data;
        // the `ablations` bench sweeps this.
        Self { max_entries: 16 }
    }
}

impl RTreeConfig {
    /// Creates a config with the given fanout.
    ///
    /// # Panics
    /// Panics when `max_entries < 2` — a tree with fanout 1 never
    /// terminates its build recursion.
    pub fn with_fanout(max_entries: usize) -> Self {
        assert!(max_entries >= 2, "R-tree fanout must be at least 2");
        Self { max_entries }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    mbr: Rect,
    agg: Aggregate,
    /// Children: node indices for internal nodes, object indices for leaves.
    children: Vec<u32>,
    is_leaf: bool,
}

/// A static, STR-bulk-loaded aggregate R-tree.
///
/// ```
/// use fedra_geo::{Point, Range, SpatialObject};
/// use fedra_index::rtree::RTree;
///
/// let objects: Vec<SpatialObject> = (0..100)
///     .map(|i| SpatialObject::at((i % 10) as f64, (i / 10) as f64, 2.0))
///     .collect();
/// let tree = RTree::from_objects(&objects);
///
/// // Exact COUNT/SUM/SUM_SQR in one traversal.
/// let query = Range::circle(Point::new(4.5, 4.5), 2.0);
/// let agg = tree.aggregate(&query);
/// assert_eq!(agg.sum, agg.count * 2.0);
/// assert_eq!(agg.count, objects
///     .iter()
///     .filter(|o| query.contains_point(&o.location))
///     .count() as f64);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree {
    config: RTreeConfig,
    objects: Vec<SpatialObject>,
    nodes: Vec<Node>,
    root: Option<u32>,
    height: usize,
}

impl RTree {
    /// Bulk-loads the tree from a set of objects (copied and reordered
    /// internally). O(n log n) time, O(n) space.
    pub fn bulk_load(objects: Vec<SpatialObject>, config: RTreeConfig) -> Self {
        Self::bulk_load_with(objects, config, &WorkerPool::sequential())
    }

    /// Bulk-loads with the STR pre-sort and per-slab sorts spread over a
    /// [`WorkerPool`]. The packed tree is bit-identical for every pool
    /// size: the parallel sort is stable-canonical, so chunking never
    /// shows through in the object order.
    pub fn bulk_load_with(
        objects: Vec<SpatialObject>,
        config: RTreeConfig,
        pool: &WorkerPool,
    ) -> Self {
        assert!(config.max_entries >= 2, "R-tree fanout must be at least 2");
        let mut tree = Self {
            config,
            objects,
            nodes: Vec::new(),
            root: None,
            height: 0,
        };
        if tree.objects.is_empty() {
            return tree;
        }
        let leaves = tree.pack_leaves(pool);
        tree.root = Some(tree.pack_upward(leaves, pool));
        tree
    }

    /// Bulk-loads with the default configuration.
    pub fn from_objects(objects: &[SpatialObject]) -> Self {
        Self::bulk_load(objects.to_vec(), RTreeConfig::default())
    }

    /// Sort-Tile-Recursive leaf packing: sort by x, slice into vertical
    /// slabs of √P leaf-groups, sort each slab by y, emit full leaves.
    /// The x pre-sort and the independent slab sorts run on the pool.
    fn pack_leaves(&mut self, pool: &WorkerPool) -> Vec<u32> {
        let m = self.config.max_entries;
        let n = self.objects.len();
        let num_leaves = n.div_ceil(m);
        let slabs = (num_leaves as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slabs);

        pool.sort_by(&mut self.objects, |a, b| {
            a.location.x.total_cmp(&b.location.x)
        });

        let mut idx: Vec<u32> = (0..n as u32).collect();
        {
            let objects = &self.objects;
            let chunks: Vec<&mut [u32]> = idx.chunks_mut(slab_size).collect();
            pool.for_each_mut(chunks, |_, slab| {
                slab.sort_by(|&a, &b| {
                    objects[a as usize]
                        .location
                        .y
                        .total_cmp(&objects[b as usize].location.y)
                });
            });
        }
        let mut leaves = Vec::with_capacity(num_leaves);
        for slab in idx.chunks(slab_size) {
            for group in slab.chunks(m) {
                let mut mbr = Rect::EMPTY;
                let mut agg = Aggregate::ZERO;
                for &oi in group {
                    let o = &self.objects[oi as usize];
                    mbr = mbr.union(&Rect::from_point(o.location));
                    agg.merge_in(&Aggregate::of(o));
                }
                let id = self.nodes.len() as u32;
                self.nodes.push(Node {
                    mbr,
                    agg,
                    children: group.to_vec(),
                    is_leaf: true,
                });
                leaves.push(id);
            }
        }
        leaves
    }

    /// Packs one level of internal nodes at a time until a single root
    /// remains, re-tiling node centers with the same STR recipe. Sorts run
    /// on the pool (only the large lower levels clear its inline cutoff).
    fn pack_upward(&mut self, mut level: Vec<u32>, pool: &WorkerPool) -> u32 {
        let m = self.config.max_entries;
        self.height = 1;
        while level.len() > 1 {
            let num_parents = level.len().div_ceil(m);
            let slabs = (num_parents as f64).sqrt().ceil() as usize;
            let slab_size = level.len().div_ceil(slabs);

            {
                let nodes = &self.nodes;
                pool.sort_by(&mut level, |&a, &b| {
                    nodes[a as usize]
                        .mbr
                        .center()
                        .x
                        .total_cmp(&nodes[b as usize].mbr.center().x)
                });
            }
            let mut next = Vec::with_capacity(num_parents);
            let mut level_slice = level;
            {
                let nodes = &self.nodes;
                let chunks: Vec<&mut [u32]> = level_slice.chunks_mut(slab_size).collect();
                pool.for_each_mut(chunks, |_, slab| {
                    slab.sort_by(|&a, &b| {
                        nodes[a as usize]
                            .mbr
                            .center()
                            .y
                            .total_cmp(&nodes[b as usize].mbr.center().y)
                    });
                });
            }
            for slab in level_slice.chunks(slab_size) {
                for group in slab.chunks(m) {
                    let mut mbr = Rect::EMPTY;
                    let mut agg = Aggregate::ZERO;
                    for &ci in group {
                        let child = &self.nodes[ci as usize];
                        mbr = mbr.union(&child.mbr);
                        agg.merge_in(&child.agg);
                    }
                    let id = self.nodes.len() as u32;
                    self.nodes.push(Node {
                        mbr,
                        agg,
                        children: group.to_vec(),
                        is_leaf: false,
                    });
                    next.push(id);
                }
            }
            level = next;
            self.height += 1;
        }
        level[0]
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Tree height in levels (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        if self.root.is_some() {
            self.height
        } else {
            0
        }
    }

    /// MBR of the whole tree ([`Rect::EMPTY`] when empty).
    pub fn mbr(&self) -> Rect {
        self.root
            .map(|r| self.nodes[r as usize].mbr)
            .unwrap_or(Rect::EMPTY)
    }

    /// Aggregate of every indexed object.
    pub fn total(&self) -> Aggregate {
        self.root
            .map(|r| self.nodes[r as usize].agg)
            .unwrap_or(Aggregate::ZERO)
    }

    /// Exact range aggregation: the local query `Q(s_i, R, F)` of
    /// Definition 2, answered in O(log n) expected time.
    pub fn aggregate(&self, range: &Range) -> Aggregate {
        let Some(root) = self.root else {
            return Aggregate::ZERO;
        };
        let mut acc = Aggregate::ZERO;
        self.aggregate_rec(root, range, None, &mut acc);
        acc
    }

    /// Exact range aggregation restricted to `clip`: aggregates objects in
    /// `range ∩ clip`. This is how a silo computes the per-grid-cell
    /// contributions `res_i^k` of Alg. 3 — one clipped query per boundary
    /// cell.
    pub fn aggregate_clipped(&self, range: &Range, clip: &Rect) -> Aggregate {
        let Some(root) = self.root else {
            return Aggregate::ZERO;
        };
        let mut acc = Aggregate::ZERO;
        self.aggregate_rec(root, range, Some(clip), &mut acc);
        acc
    }

    fn aggregate_rec(&self, node_id: u32, range: &Range, clip: Option<&Rect>, acc: &mut Aggregate) {
        let node = &self.nodes[node_id as usize];
        // Combined relation of (range ∩ clip) to the node MBR.
        let rel_range = range.relation(&node.mbr);
        if rel_range == RectRelation::Disjoint {
            return;
        }
        let rel = match clip {
            None => rel_range,
            Some(c) => {
                if !c.intersects(&node.mbr) {
                    return;
                }
                if rel_range == RectRelation::Contained && c.contains_rect(&node.mbr) {
                    RectRelation::Contained
                } else {
                    RectRelation::Intersecting
                }
            }
        };
        if rel == RectRelation::Contained {
            acc.merge_in(&node.agg);
            return;
        }
        if node.is_leaf {
            for &oi in &node.children {
                let o = &self.objects[oi as usize];
                if range.contains_point(&o.location)
                    && clip.is_none_or(|c| c.contains_point(&o.location))
                {
                    acc.merge_in(&Aggregate::of(o));
                }
            }
        } else {
            for &ci in &node.children {
                self.aggregate_rec(ci, range, clip, acc);
            }
        }
    }

    /// Collects the objects inside the range (for tests / exports).
    pub fn query_objects(&self, range: &Range) -> Vec<SpatialObject> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            if !range.intersects_rect(&node.mbr) {
                continue;
            }
            if node.is_leaf {
                for &oi in &node.children {
                    let o = &self.objects[oi as usize];
                    if range.contains_point(&o.location) {
                        out.push(*o);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        out
    }

    /// Number of nodes (diagnostics / memory model validation).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Every indexed object, in STR-packed order. This is the silo's
    /// canonical copy of its partition — callers that need "all objects"
    /// (e.g. a grid rebuild) read it directly instead of paying an O(n)
    /// inflated-MBR range query that also risks missing boundary points.
    pub fn objects(&self) -> &[SpatialObject] {
        &self.objects
    }
}

impl IndexMemory for RTree {
    fn memory_bytes(&self) -> usize {
        let nodes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>() + n.children.capacity() * std::mem::size_of::<u32>()
            })
            .sum();
        std::mem::size_of::<Self>()
            + self.objects.capacity() * std::mem::size_of::<SpatialObject>()
            + nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;

    /// Brute-force oracle.
    fn brute(objects: &[SpatialObject], range: &Range) -> Aggregate {
        objects
            .iter()
            .filter(|o| range.contains_point(&o.location))
            .fold(Aggregate::ZERO, |a, o| a.merge(&Aggregate::of(o)))
    }

    fn grid_objects(n: usize) -> Vec<SpatialObject> {
        // Deterministic pseudo-random scatter in [0, 100]².
        let mut objs = Vec::with_capacity(n);
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            objs.push(SpatialObject::at(x, y, (i % 7) as f64));
        }
        objs
    }

    #[test]
    fn empty_tree() {
        let t = RTree::from_objects(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.total(), Aggregate::ZERO);
        assert!(t.mbr().is_empty());
        let q = Range::circle(Point::new(0.0, 0.0), 1.0);
        assert_eq!(t.aggregate(&q), Aggregate::ZERO);
        assert!(t.query_objects(&q).is_empty());
    }

    #[test]
    fn single_object() {
        let t = RTree::from_objects(&[SpatialObject::at(1.0, 2.0, 5.0)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.total().sum, 5.0);
        let hit = Range::circle(Point::new(1.0, 2.0), 0.5);
        let miss = Range::circle(Point::new(9.0, 9.0), 0.5);
        assert_eq!(t.aggregate(&hit).count, 1.0);
        assert_eq!(t.aggregate(&miss).count, 0.0);
    }

    #[test]
    fn total_matches_bruteforce_everything_range() {
        let objs = grid_objects(1000);
        let t = RTree::from_objects(&objs);
        let everything = Range::rect(Point::new(-1.0, -1.0), Point::new(101.0, 101.0));
        let b = brute(&objs, &everything);
        let a = t.aggregate(&everything);
        assert_eq!(a.count, b.count);
        assert_eq!(a.count, 1000.0);
        assert!((a.sum - b.sum).abs() < 1e-9);
    }

    #[test]
    fn circle_queries_match_bruteforce() {
        let objs = grid_objects(2000);
        let t = RTree::from_objects(&objs);
        for (cx, cy, r) in [
            (50.0, 50.0, 10.0),
            (0.0, 0.0, 30.0),
            (100.0, 0.0, 5.0),
            (25.0, 75.0, 0.1),
            (50.0, 50.0, 200.0),
        ] {
            let q = Range::circle(Point::new(cx, cy), r);
            let a = t.aggregate(&q);
            let b = brute(&objs, &q);
            assert_eq!(a.count, b.count, "count mismatch at {q}");
            assert!((a.sum - b.sum).abs() < 1e-9, "sum mismatch at {q}");
            assert!((a.sum_sqr - b.sum_sqr).abs() < 1e-9);
        }
    }

    #[test]
    fn rect_queries_match_bruteforce() {
        let objs = grid_objects(2000);
        let t = RTree::from_objects(&objs);
        for (x0, y0, x1, y1) in [
            (10.0, 10.0, 20.0, 20.0),
            (0.0, 0.0, 100.0, 1.0),
            (49.9, 0.0, 50.1, 100.0),
            (90.0, 90.0, 91.0, 91.0),
        ] {
            let q = Range::rect(Point::new(x0, y0), Point::new(x1, y1));
            let a = t.aggregate(&q);
            let b = brute(&objs, &q);
            assert_eq!(a.count, b.count, "count mismatch at {q}");
            assert!((a.sum - b.sum).abs() < 1e-9);
        }
    }

    #[test]
    fn clipped_queries_match_bruteforce() {
        let objs = grid_objects(1500);
        let t = RTree::from_objects(&objs);
        let range = Range::circle(Point::new(50.0, 50.0), 20.0);
        for (x0, y0, x1, y1) in [
            (40.0, 40.0, 60.0, 60.0),
            (30.0, 50.0, 50.0, 70.0),
            (0.0, 0.0, 10.0, 10.0), // disjoint from the circle
            (45.0, 45.0, 46.0, 46.0),
        ] {
            let clip = Rect::new(Point::new(x0, y0), Point::new(x1, y1));
            let a = t.aggregate_clipped(&range, &clip);
            let b = objs
                .iter()
                .filter(|o| range.contains_point(&o.location) && clip.contains_point(&o.location))
                .fold(Aggregate::ZERO, |acc, o| acc.merge(&Aggregate::of(o)));
            assert_eq!(a.count, b.count, "clip {clip}");
            assert!((a.sum - b.sum).abs() < 1e-9);
        }
    }

    #[test]
    fn clipped_sum_over_partition_equals_unclipped() {
        // Clipping by a partition of the plane must reassemble the answer.
        let objs = grid_objects(1200);
        let t = RTree::from_objects(&objs);
        let range = Range::circle(Point::new(50.0, 50.0), 25.0);
        let mut acc = Aggregate::ZERO;
        let step = 20.0;
        for i in 0..6 {
            for j in 0..6 {
                let clip = Rect::new(
                    Point::new(i as f64 * step, j as f64 * step),
                    // Half-open tiling emulated by nudging the upper edge.
                    Point::new((i + 1) as f64 * step - 1e-9, (j + 1) as f64 * step - 1e-9),
                );
                acc.merge_in(&t.aggregate_clipped(&range, &clip));
            }
        }
        let whole = t.aggregate(&range);
        assert_eq!(acc.count, whole.count);
        assert!((acc.sum - whole.sum).abs() < 1e-9);
    }

    #[test]
    fn query_objects_matches_filter() {
        let objs = grid_objects(500);
        let t = RTree::from_objects(&objs);
        let q = Range::circle(Point::new(50.0, 50.0), 15.0);
        let mut got: Vec<_> = t
            .query_objects(&q)
            .iter()
            .map(|o| (o.location.x.to_bits(), o.location.y.to_bits()))
            .collect();
        let mut want: Vec<_> = objs
            .iter()
            .filter(|o| q.contains_point(&o.location))
            .map(|o| (o.location.x.to_bits(), o.location.y.to_bits()))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn height_grows_logarithmically() {
        let cfg = RTreeConfig::with_fanout(4);
        let t16 = RTree::bulk_load(grid_objects(16), cfg);
        let t64 = RTree::bulk_load(grid_objects(64), cfg);
        let t4096 = RTree::bulk_load(grid_objects(4096), cfg);
        assert!(t16.height() <= 3);
        assert!(t64.height() <= 4);
        assert!(t4096.height() <= 7);
        assert!(t4096.height() > t16.height());
    }

    #[test]
    fn fanout_one_is_rejected() {
        assert!(std::panic::catch_unwind(|| RTreeConfig::with_fanout(1)).is_err());
    }

    #[test]
    fn duplicate_locations_are_kept() {
        let objs = vec![SpatialObject::at(1.0, 1.0, 2.0); 50];
        let t = RTree::from_objects(&objs);
        let q = Range::circle(Point::new(1.0, 1.0), 0.1);
        assert_eq!(t.aggregate(&q).count, 50.0);
        assert_eq!(t.aggregate(&q).sum, 100.0);
    }

    #[test]
    fn memory_grows_with_size() {
        let small = RTree::from_objects(&grid_objects(100));
        let large = RTree::from_objects(&grid_objects(10_000));
        assert!(large.memory_bytes() > small.memory_bytes());
        assert!(small.memory_bytes() > 0);
    }

    #[test]
    fn parallel_bulk_load_is_bit_identical() {
        // 20k objects clear the pool's inline-sort cutoff, so the chunked
        // sorts and merges actually run — and must not show through.
        let objs = grid_objects(20_000);
        let seq = RTree::bulk_load(objs.clone(), RTreeConfig::default());
        let par = RTree::bulk_load_with(objs, RTreeConfig::default(), &WorkerPool::new(4));
        let bits = |t: &RTree| -> Vec<(u64, u64)> {
            t.objects()
                .iter()
                .map(|o| (o.location.x.to_bits(), o.location.y.to_bits()))
                .collect()
        };
        assert_eq!(bits(&seq), bits(&par));
        assert_eq!(seq.node_count(), par.node_count());
        assert_eq!(seq.height(), par.height());
        for (cx, cy, r) in [(50.0, 50.0, 17.0), (10.0, 90.0, 33.0)] {
            let q = Range::circle(Point::new(cx, cy), r);
            let (a, b) = (seq.aggregate(&q), par.aggregate(&q));
            assert_eq!(a.count.to_bits(), b.count.to_bits());
            assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            assert_eq!(a.sum_sqr.to_bits(), b.sum_sqr.to_bits());
        }
    }

    #[test]
    fn objects_accessor_returns_every_object() {
        let objs = grid_objects(333);
        let t = RTree::from_objects(&objs);
        assert_eq!(t.objects().len(), 333);
        let mut got: Vec<u64> = t.objects().iter().map(|o| o.location.x.to_bits()).collect();
        let mut want: Vec<u64> = objs.iter().map(|o| o.location.x.to_bits()).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn node_count_is_linear_in_objects() {
        let t = RTree::bulk_load(grid_objects(1000), RTreeConfig::with_fanout(10));
        // ~100 leaves + ~10 internals + root.
        assert!(t.node_count() >= 100);
        assert!(t.node_count() <= 130);
    }
}
