//! A silo-local scoped worker pool.
//!
//! Index construction (`RTree::bulk_load_with`, `LsrForest::build_with`,
//! `GridIndex::build_with`) and the silo request loop both need the same
//! primitive: fan a known amount of independent work across a few threads
//! and reassemble the results in input order. [`WorkerPool`] provides it
//! hand-rolled over [`std::thread::scope`] — no runtime, no queues that
//! outlive a call, no new dependencies. The pool stores only its size;
//! threads are scoped to each operation, so borrowing the caller's data is
//! safe and a pool is trivially `Copy`.
//!
//! # Determinism
//!
//! Every operation returns results indexed by input position, and every
//! chunked helper derives its chunk boundaries from the *input size only*,
//! never from the thread count. Callers that reduce `Aggregate`s over
//! chunk results in fixed chunk order therefore produce bit-identical
//! floats whether the pool has 1 thread or N — the property the
//! `parallel_equivalence` suite pins. [`WorkerPool::sort_by`] goes
//! further: its output is the canonical stable sort (equal to
//! `slice::sort_by`) regardless of chunking, because the pairwise merges
//! take the left run on ties.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable that overrides the automatic pool size.
pub const POOL_SIZE_ENV: &str = "FEDRA_SILO_THREADS";

/// Cap on the automatic pool size: silo work parallelizes well up to a
/// handful of cores, and a federation runs `m` silos side by side — an
/// uncapped per-silo pool would oversubscribe the host `m`-fold.
pub const MAX_AUTO_THREADS: usize = 8;

/// Minimum slice length before [`WorkerPool::sort_by`] bothers splitting.
const MIN_PARALLEL_SORT: usize = 8 * 1024;

/// A fixed-size scoped worker pool (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::auto()
    }
}

impl WorkerPool {
    /// A pool of `threads` workers; `0` means [`WorkerPool::auto`].
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            Self::auto()
        } else {
            Self { threads }
        }
    }

    /// A single-threaded pool: every operation runs inline on the caller.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// Sizes the pool from the host: available cores clamped to
    /// [`MAX_AUTO_THREADS`], overridable via the [`POOL_SIZE_ENV`]
    /// environment variable (useful for A/B runs and CI equivalence
    /// sweeps).
    pub fn auto() -> Self {
        let from_env = std::env::var(POOL_SIZE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_AUTO_THREADS)
        });
        Self { threads }
    }

    /// Number of worker threads operations may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether operations run inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Work-stealing over an atomic cursor; each worker accumulates
    /// `(index, result)` pairs locally and the calling thread scatters
    /// them — no shared lock on the hot path, no `unsafe`.
    ///
    /// # Panics
    /// Re-raises the first worker panic on the calling thread (after all
    /// workers have been joined), like the inline loop it replaces.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let (slots, panic) = self.run_borrowed(items, &f);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        // No worker panicked, so the cursor visited every index: the
        // flatten drops nothing.
        slots.into_iter().flatten().collect()
    }

    /// Like [`WorkerPool::map`], but degrades panics instead of
    /// propagating them: items claimed by a worker that died come back as
    /// `None` while items claimed by surviving workers still complete
    /// (sequentially, a panic poisons the remaining items, mirroring a
    /// one-worker pool).
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_borrowed(items, &f).0
    }

    /// Maps `f` over owned items (consumed), returning results in input
    /// order. Items are pre-partitioned round-robin across workers — no
    /// locks needed to hand out ownership.
    ///
    /// # Panics
    /// Re-raises the first worker panic on the calling thread.
    pub fn map_vec<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let workers = self.threads.min(n);
        let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, t) in items.into_iter().enumerate() {
            buckets[i % workers].push((i, t));
        }
        let f = &f;
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(n, || None);
        let panic = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(i, t)| (i, f(i, t)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut first_panic = None;
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            first_panic
        });
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots.into_iter().flatten().collect()
    }

    /// Runs `f` once per mutable chunk, distributing chunks round-robin
    /// across workers. The chunk list is the unit of distribution, so
    /// callers control granularity (e.g. one STR slab per chunk).
    ///
    /// # Panics
    /// Re-raises the first worker panic on the calling thread.
    pub fn for_each_mut<T, F>(&self, chunks: Vec<&mut [T]>, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if self.threads == 1 || chunks.len() <= 1 {
            for (i, chunk) in chunks.into_iter().enumerate() {
                f(i, chunk);
            }
            return;
        }
        let workers = self.threads.min(chunks.len());
        let mut buckets: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, chunk) in chunks.into_iter().enumerate() {
            buckets[i % workers].push((i, chunk));
        }
        let f = &f;
        let panic = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        for (i, chunk) in bucket {
                            f(i, chunk);
                        }
                    })
                })
                .collect();
            let mut first_panic = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    first_panic.get_or_insert(payload);
                }
            }
            first_panic
        });
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// Stable parallel sort: chunk-sorts on the workers, then merges runs
    /// pairwise (left run wins ties). The output is exactly what
    /// `items.sort_by(cmp)` produces — chunking never shows through — so
    /// STR bulk-loads stay bit-reproducible across pool sizes.
    pub fn sort_by<T, F>(&self, items: &mut [T], cmp: F)
    where
        T: Copy + Send + Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n < MIN_PARALLEL_SORT {
            items.sort_by(|a, b| cmp(a, b));
            return;
        }
        let chunk_len = n.div_ceil(self.threads);
        {
            let chunks: Vec<&mut [T]> = items.chunks_mut(chunk_len).collect();
            self.for_each_mut(chunks, |_, chunk| chunk.sort_by(|a, b| cmp(a, b)));
        }
        // Iterative pairwise merge of the sorted runs. O(n log threads)
        // sequential work — the O(n log n) chunk sorts above are what the
        // pool buys down.
        let mut scratch: Vec<T> = Vec::with_capacity(n);
        let mut width = chunk_len;
        while width < n {
            let mut start = 0;
            while start + width < n {
                let end = (start + 2 * width).min(n);
                merge_runs(&mut items[start..end], width, &mut scratch, &cmp);
                start = end;
            }
            width *= 2;
        }
    }

    /// Shared implementation of [`WorkerPool::map`] / [`WorkerPool::try_map`].
    ///
    /// Returns the per-index result slots plus the first worker panic
    /// payload (if any). The sequential path mirrors a dying one-worker
    /// pool: the first panic abandons the remaining items.
    fn run_borrowed<T, R, F>(
        &self,
        items: &[T],
        f: &F,
    ) -> (Vec<Option<R>>, Option<Box<dyn std::any::Any + Send>>)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(n, || None);
        if self.threads == 1 || n <= 1 {
            for (i, item) in items.iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                    Ok(r) => slots[i] = Some(r),
                    Err(payload) => return (slots, Some(payload)),
                }
            }
            return (slots, None);
        }
        let next = AtomicUsize::new(0);
        let panic = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads.min(n))
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            let mut first_panic = None;
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => {
                        first_panic.get_or_insert(payload);
                    }
                }
            }
            first_panic
        });
        (slots, panic)
    }
}

/// Stable two-run merge: `slice[..mid]` and `slice[mid..]` are each
/// sorted; afterwards the whole slice is, with left-run elements first on
/// ties (the invariant that makes chunked sorting equal `sort_by`).
fn merge_runs<T, F>(slice: &mut [T], mid: usize, scratch: &mut Vec<T>, cmp: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> std::cmp::Ordering,
{
    scratch.clear();
    {
        let (a, b) = slice.split_at(mid);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            // Strictly-less from the right run, else take left: stability.
            if cmp(&b[j], &a[i]) == std::cmp::Ordering::Less {
                scratch.push(b[j]);
                j += 1;
            } else {
                scratch.push(a[i]);
                i += 1;
            }
        }
        scratch.extend_from_slice(&a[i..]);
        scratch.extend_from_slice(&b[j..]);
    }
    slice.copy_from_slice(scratch);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let items: Vec<u64> = (0..257).collect();
            let out = pool.map(&items, |i, &x| x * 2 + i as u64);
            let expect: Vec<u64> = (0..257).map(|x| x * 3).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_vec_consumes_and_preserves_order() {
        for threads in [1, 3, 8] {
            let pool = WorkerPool::new(threads);
            let items: Vec<String> = (0..100).map(|i| format!("item-{i}")).collect();
            let out = pool.map_vec(items, |_, s| s.len());
            let expect: Vec<usize> = (0..100).map(|i| format!("item-{i}").len()).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_propagates_panics() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                assert!(x != 17, "boom");
                x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn try_map_degrades_panics_to_none() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let items: Vec<usize> = (0..32).collect();
            let out = pool.try_map(&items, |_, &x| {
                assert!(x != 5, "boom");
                x
            });
            assert_eq!(out.len(), 32);
            // The panicking item never answers; items it dragged down with
            // it (the dying worker's locals) are None too, but the call
            // itself returns instead of propagating.
            assert_eq!(out[5], None);
            for (i, slot) in out.iter().enumerate() {
                if let Some(v) = slot {
                    assert_eq!(*v, i, "threads={threads}: slot {i}");
                }
            }
        }
    }

    #[test]
    fn for_each_mut_touches_every_chunk() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let mut data: Vec<u32> = vec![0; 40];
            let chunks: Vec<&mut [u32]> = data.chunks_mut(7).collect();
            pool.for_each_mut(chunks, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = i as u32 + 1;
                }
            });
            assert!(data.iter().all(|&v| v > 0));
            assert_eq!(data[0], 1);
            assert_eq!(data[39], 6); // 40 / 7 → 6 chunks, last is chunk 5
        }
    }

    #[test]
    fn sort_matches_std_stable_sort_bitwise() {
        // Pseudo-random keys with deliberate duplicates; the payload makes
        // stability observable.
        let mut state = 0x1234_5678_9abc_def0u64;
        let items: Vec<(u64, u64)> = (0..50_000)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 50) % 512, i)
            })
            .collect();
        let mut expect = items.clone();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        for threads in [2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let mut got = items.clone();
            pool.sort_by(&mut got, |a, b| a.0.cmp(&b.0));
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn small_sorts_run_inline() {
        let pool = WorkerPool::new(4);
        let mut v = vec![3u32, 1, 2];
        pool.sort_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert!(pool.threads() <= MAX_AUTO_THREADS.max(1));
        assert!(WorkerPool::sequential().is_sequential());
    }

    #[test]
    fn empty_inputs_are_fine() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.map(&empty, |_, &x| x).is_empty());
        assert!(pool.map_vec(Vec::<u32>::new(), |_, x| x).is_empty());
        pool.for_each_mut(Vec::<&mut [u32]>::new(), |_, _| {});
        let mut nothing: [u32; 0] = [];
        pool.sort_by(&mut nothing, |a, b| a.cmp(b));
    }
}
