//! Multi-resolution coarsenings of a [`GridIndex`] — the provider-side
//! pyramid `L1..Lk` over the merged federation grid `g₀`.
//!
//! Each level halves the grid resolution by merging 2×2 blocks of the
//! previous level (the classical image-pyramid / pre-aggregation scheme:
//! estimating range aggregates from coarse pre-computed aggregates is
//! well-grounded — see e.g. arXiv cs/0501029). Every level also carries
//! its own cumulative (prefix-sum) array, so level-aligned rectangle sums
//! stay O(1) at every resolution.
//!
//! The payoff is [`GridPyramid::estimate`]: a top-down refinement that
//! answers a range query from the **coarsest cells whose boundary error
//! fits the caller's ε budget**. Coarse cells fully contained in the
//! range contribute exactly; cells straddling the range boundary either
//! get estimated in place by area fraction (when the accumulated bound
//! already fits ε) or are split into their four children one level down,
//! all the way to the base grid when ε demands it. The absolute error
//! bound of the served answer is *computed* alongside it — never assumed.
//!
//! Determinism contract (DESIGN.md "Threading model"): builds run on the
//! [`WorkerPool`] with chunk boundaries derived from grid dimensions only
//! and every 2×2 merge in fixed child order, so pyramids are bit-identical
//! at every pool size. Queries are sequential and allocation-order
//! deterministic.

use fedra_geo::{intersection_area, Point, Range, Rect, RectRelation};

use crate::agg::Aggregate;
use crate::grid::{GridIndex, GridSpec};
use crate::pool::WorkerPool;
use crate::IndexMemory;

/// Coarse rows per coarsening task. Derived from the grid dimensions
/// only — never from the pool size — to keep builds bit-identical at
/// every worker count (same contract as `BUILD_CHUNK_OBJECTS`).
const COARSEN_CHUNK_ROWS: u32 = 64;

/// Hard cap on pyramid depth. 2¹² cells per side is far beyond any grid
/// the federation builds; the cap only bounds pathological specs.
const MAX_LEVELS: usize = 12;

/// One coarsening level: a 2×2-merged grid plus its prefix-sum array.
#[derive(Debug, Clone)]
pub struct PyramidLevel {
    /// Base cells per coarse cell side: `2^level`.
    factor: u32,
    /// Coarse columns: `ceil(base_nx / factor)`.
    nx: u32,
    /// Coarse rows: `ceil(base_ny / factor)`.
    ny: u32,
    /// Row-major coarse cell aggregates.
    cells: Vec<Aggregate>,
    /// Cumulative array, `(nx+1) × (ny+1)` with a zero guard row/column
    /// (same layout as [`crate::grid::PrefixGrid`]).
    cum: Vec<Aggregate>,
}

impl PyramidLevel {
    /// Base cells per coarse cell side at this level.
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Coarse grid width in cells.
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Coarse grid height in cells.
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Row-major coarse cell aggregates.
    pub fn cells(&self) -> &[Aggregate] {
        &self.cells
    }

    /// The aggregate of coarse cell `(ix, iy)`.
    pub fn cell(&self, ix: u32, iy: u32) -> &Aggregate {
        &self.cells[(iy * self.nx + ix) as usize]
    }

    /// O(1) inclusive coarse-rectangle sum `[ix0..=ix1] × [iy0..=iy1]`
    /// by 2-D inclusion–exclusion over the cumulative array.
    pub fn rect_sum(&self, ix0: u32, iy0: u32, ix1: u32, iy1: u32) -> Aggregate {
        assert!(ix0 <= ix1 && ix1 < self.nx, "x range out of bounds");
        assert!(iy0 <= iy1 && iy1 < self.ny, "y range out of bounds");
        let w = (self.nx + 1) as usize;
        let at = |ix: u32, iy: u32| self.cum[iy as usize * w + ix as usize];
        let a = at(ix0, iy0);
        let b = at(ix1 + 1, iy0);
        let c = at(ix0, iy1 + 1);
        let d = at(ix1 + 1, iy1 + 1);
        d.sub(&b).sub(&c).merge(&a)
    }

    /// The coarse cell's rectangle in base-spec coordinates. Exactly the
    /// union of its base cells' rectangles: the coarse edge coordinates
    /// `ix·(2^l·len)` and the fine ones `(2^l·ix)·len` round identically
    /// because scaling by a power of two is exact in binary floating
    /// point.
    fn cell_rect(&self, spec: &GridSpec, ix: u32, iy: u32) -> Rect {
        let len = spec.cell_len() * self.factor as f64;
        let min = spec.bounds().min;
        Rect::new(
            Point::new(min.x + ix as f64 * len, min.y + iy as f64 * len),
            Point::new(min.x + (ix + 1) as f64 * len, min.y + (iy + 1) as f64 * len),
        )
    }
}

/// An answer served from the pyramid, with its computed error bound.
///
/// `aggregate = interior + Σ frac_i · mass_i` over the frontier cells the
/// refinement stopped at; `interior` is the exact mass of all cells fully
/// contained in the range (a lower bound on the true answer), and `bound`
/// is the per-component absolute error bound
/// `Σ max(frac_i, 1 − frac_i) · mass_i` over those frontier cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PyramidEstimate {
    /// The served estimate.
    pub aggregate: Aggregate,
    /// Exact mass of fully-contained cells (true answer is ≥ this,
    /// component-wise, for non-negative measures).
    pub interior: Aggregate,
    /// Per-component absolute error bound of `aggregate`.
    pub bound: Aggregate,
    /// Pyramid level the boundary frontier settled at (0 = base grid).
    pub level: u32,
    /// Cells touched across all levels — the work the pyramid actually
    /// did, for benchmarks and observability.
    pub cells_read: usize,
}

impl PyramidEstimate {
    /// Relative error bound of the served answer: the worst, over the
    /// COUNT / SUM / SUM_SQR components, of `bound / interior`.
    ///
    /// Sound for non-negative measures (the paper's trajectory
    /// workloads): each boundary cell's true in-range mass lies in
    /// `[0, mass]`, so `|estimate − ans| ≤ bound` while `ans ≥ interior`.
    /// Components with no boundary mass bound to 0; boundary mass over an
    /// empty interior (or a negative-sum cell, where `[0, mass]` no
    /// longer brackets the truth) yields `+∞` — never servable.
    pub fn relative_bound(&self) -> f64 {
        let rel = |bound: f64, interior: f64| -> f64 {
            if bound <= 0.0 {
                0.0
            } else if interior <= 0.0 {
                f64::INFINITY
            } else {
                bound / interior
            }
        };
        rel(self.bound.count, self.interior.count)
            .max(rel(self.bound.sum, self.interior.sum))
            .max(rel(self.bound.sum_sqr, self.interior.sum_sqr))
    }

    /// Whether the computed bound fits a requested ε.
    pub fn meets(&self, epsilon: f64) -> bool {
        self.relative_bound() <= epsilon
    }
}

/// Coarsening levels `L1..Lk` of a [`GridIndex`], each with a prefix-sum
/// array. See the module docs for the determinism and accuracy contract.
#[derive(Debug, Clone)]
pub struct GridPyramid {
    /// The base (L0) grid spec the pyramid was built over.
    spec: GridSpec,
    /// `levels[l-1]` holds level `l` (factor `2^l`); L0 stays in the
    /// [`GridIndex`] itself.
    levels: Vec<PyramidLevel>,
}

impl GridPyramid {
    /// Builds the full pyramid sequentially.
    pub fn build(base: &GridIndex) -> Self {
        Self::build_with(base, &WorkerPool::sequential())
    }

    /// Builds the full pyramid on `pool`. Levels are added until the
    /// coarsest is a single cell (or [`MAX_LEVELS`], whichever first);
    /// the result is bit-identical for every pool size.
    pub fn build_with(base: &GridIndex, pool: &WorkerPool) -> Self {
        let spec = *base.spec();
        let mut levels: Vec<PyramidLevel> = Vec::new();
        loop {
            let (pnx, pny, prev_cells) = match levels.last() {
                Some(level) => (level.nx, level.ny, level.cells.as_slice()),
                None => (spec.nx(), spec.ny(), base.cells()),
            };
            if (pnx <= 1 && pny <= 1) || levels.len() >= MAX_LEVELS {
                break;
            }
            let nx = pnx.div_ceil(2);
            let ny = pny.div_ceil(2);
            let cells = coarsen(prev_cells, pnx, pny, nx, ny, pool);
            let cum = prefix(&cells, nx, ny);
            let factor = 2u32 << levels.len();
            levels.push(PyramidLevel {
                factor,
                nx,
                ny,
                cells,
                cum,
            });
        }
        Self { spec, levels }
    }

    /// The base grid spec this pyramid coarsens.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Number of coarsening levels above the base grid (`k` in `L0..Lk`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Level `l` (1-based; L0 lives in the base [`GridIndex`]).
    pub fn level(&self, l: usize) -> &PyramidLevel {
        assert!(
            l >= 1 && l <= self.levels.len(),
            "pyramid level {l} out of range 1..={}",
            self.levels.len()
        );
        &self.levels[l - 1]
    }

    /// O(1) coarse-rectangle sum at level `l` (1-based).
    pub fn rect_sum(&self, l: usize, ix0: u32, iy0: u32, ix1: u32, iy1: u32) -> Aggregate {
        self.level(l).rect_sum(ix0, iy0, ix1, iy1)
    }

    /// Whether the inclusive base-cell region `[ix0..=ix1] × [iy0..=iy1]`
    /// is *provably* empty from one O(1) level-1 prefix probe over the
    /// covering coarse span. `true` means no objects anywhere in the
    /// region; `false` is inconclusive (the caller falls back to the base
    /// cells). The silo cell-contribution path uses this to skip R-tree
    /// probes for boundary cells in areas the silo does not cover.
    pub fn region_empty(&self, ix0: u32, iy0: u32, ix1: u32, iy1: u32) -> bool {
        match self.levels.first() {
            Some(l1) => l1.rect_sum(ix0 / 2, iy0 / 2, ix1 / 2, iy1 / 2).count == 0.0,
            None => false,
        }
    }

    /// Answers `range` from the coarsest cells whose boundary error fits
    /// `epsilon`, refining boundary cells level by level (to the base
    /// grid when ε demands it). See [`PyramidEstimate`] for the served
    /// bound semantics; `base` must be the grid this pyramid was built
    /// from.
    pub fn estimate(&self, base: &GridIndex, range: &Range, epsilon: f64) -> PyramidEstimate {
        assert_eq!(
            base.spec(),
            &self.spec,
            "pyramid was built over a different grid spec"
        );
        assert!(epsilon >= 0.0, "epsilon must be non-negative");

        let mut interior = Aggregate::ZERO;
        let mut cells_read = 0usize;
        // The boundary frontier at the current level: cell coords plus
        // the cell's aggregate and its in-range area fraction.
        let mut frontier: Vec<(u32, u32, Aggregate, f64)> = Vec::new();

        let mut level_number = self.levels.len() as u32;
        // Candidate coarse cells to classify at the current level. The
        // coarsest level is at most 2×2 (build loop runs to 1×1), so the
        // seed enumeration is O(1).
        let (top_nx, top_ny) = match self.levels.last() {
            Some(top) => (top.nx, top.ny),
            None => (self.spec.nx(), self.spec.ny()),
        };
        let mut candidates: Vec<(u32, u32)> = (0..top_ny)
            .flat_map(|iy| (0..top_nx).map(move |ix| (ix, iy)))
            .collect();

        loop {
            // Classify this level's candidates in deterministic order.
            frontier.clear();
            for &(ix, iy) in &candidates {
                cells_read += 1;
                let (rect, mass) = self.cell_at(base, level_number, ix, iy);
                match range.relation(&rect) {
                    RectRelation::Disjoint => {}
                    RectRelation::Contained => interior.merge_in(&mass),
                    RectRelation::Intersecting => {
                        let frac = intersection_area(range, &rect) / rect.area();
                        // Zero-width overlaps (a closed range edge grazing
                        // the next cell column) are treated as disjoint —
                        // the same measure-zero convention as the
                        // planner's boundary-mass weighting.
                        if frac > 0.0 {
                            frontier.push((ix, iy, mass, frac));
                        }
                    }
                }
            }

            // Would the area-fraction estimate of the current frontier
            // already satisfy ε? (Per component: Σ max(f,1−f)·mass ≤
            // ε · interior.) At the base grid there is nowhere finer to
            // go — serve regardless; the bound still reports the truth.
            let mut bound = Aggregate::ZERO;
            for &(_, _, mass, frac) in &frontier {
                bound.merge_in(&mass.scale(frac.max(1.0 - frac)));
            }
            let fits = |b: f64, i: f64| b <= epsilon * i;
            let served = level_number == 0
                || frontier.is_empty()
                || (fits(bound.count, interior.count)
                    && fits(bound.sum, interior.sum)
                    && fits(bound.sum_sqr, interior.sum_sqr));
            if served {
                let mut aggregate = interior;
                for &(_, _, mass, frac) in &frontier {
                    aggregate.merge_in(&mass.scale(frac));
                }
                return PyramidEstimate {
                    aggregate,
                    interior,
                    bound,
                    level: level_number,
                    cells_read,
                };
            }

            // Refine: the next level's candidates are the children of the
            // current boundary cells, in fixed (parent, dy, dx) order.
            let (child_nx, child_ny) = if level_number >= 2 {
                let child = &self.levels[level_number as usize - 2];
                (child.nx, child.ny)
            } else {
                (self.spec.nx(), self.spec.ny())
            };
            candidates.clear();
            for &(ix, iy, _, _) in &frontier {
                for dy in 0..2u32 {
                    for dx in 0..2u32 {
                        let cx = 2 * ix + dx;
                        let cy = 2 * iy + dy;
                        if cx < child_nx && cy < child_ny {
                            candidates.push((cx, cy));
                        }
                    }
                }
            }
            level_number -= 1;
        }
    }

    /// The rectangle and aggregate of cell `(ix, iy)` at `level_number`
    /// (0 = base grid).
    fn cell_at(&self, base: &GridIndex, level_number: u32, ix: u32, iy: u32) -> (Rect, Aggregate) {
        if level_number == 0 {
            let id = self.spec.cell_id(ix, iy);
            (self.spec.cell_rect(ix, iy), *base.cell(id))
        } else {
            let level = &self.levels[level_number as usize - 1];
            (level.cell_rect(&self.spec, ix, iy), *level.cell(ix, iy))
        }
    }
}

impl IndexMemory for GridPyramid {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .levels
                .iter()
                .map(|l| {
                    std::mem::size_of::<PyramidLevel>()
                        + (l.cells.capacity() + l.cum.capacity()) * std::mem::size_of::<Aggregate>()
                })
                .sum::<usize>()
    }
}

/// 2×2-merges `prev` (`pnx × pny`) into a `nx × ny` coarse grid. Each
/// coarse cell folds its (up to four) children in fixed
/// `(+0,+0) (+1,+0) (+0,+1) (+1,+1)` order; rows are chunked by
/// [`COARSEN_CHUNK_ROWS`] and concatenated in chunk order, so the result
/// is bit-identical at every pool size.
fn coarsen(
    prev: &[Aggregate],
    pnx: u32,
    pny: u32,
    nx: u32,
    ny: u32,
    pool: &WorkerPool,
) -> Vec<Aggregate> {
    let chunks: Vec<(u32, u32)> = (0..ny)
        .step_by(COARSEN_CHUNK_ROWS as usize)
        .map(|row0| (row0, (row0 + COARSEN_CHUNK_ROWS).min(ny)))
        .collect();
    let parts: Vec<Vec<Aggregate>> = pool.map(&chunks, |_, &(row0, row1)| {
        let mut out = Vec::with_capacity(((row1 - row0) * nx) as usize);
        for cy in row0..row1 {
            for cx in 0..nx {
                let mut agg = Aggregate::ZERO;
                for dy in 0..2u32 {
                    for dx in 0..2u32 {
                        let fx = 2 * cx + dx;
                        let fy = 2 * cy + dy;
                        if fx < pnx && fy < pny {
                            agg.merge_in(&prev[(fy * pnx + fx) as usize]);
                        }
                    }
                }
                out.push(agg);
            }
        }
        out
    });
    parts.concat()
}

/// Builds the `(nx+1) × (ny+1)` cumulative array of a coarse grid (same
/// recurrence as `PrefixGrid::build`).
fn prefix(cells: &[Aggregate], nx: u32, ny: u32) -> Vec<Aggregate> {
    let w = (nx + 1) as usize;
    let mut cum = vec![Aggregate::ZERO; w * (ny + 1) as usize];
    for iy in 0..ny as usize {
        for ix in 0..nx as usize {
            let cell = cells[iy * nx as usize + ix];
            let left = cum[(iy + 1) * w + ix];
            let above = cum[iy * w + ix + 1];
            let diag = cum[iy * w + ix];
            cum[(iy + 1) * w + ix + 1] = cell.merge(&left).merge(&above).sub(&diag);
        }
    }
    cum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PrefixGrid;
    use fedra_geo::SpatialObject;

    /// Deterministic objects with *integer* measures: integer-valued
    /// aggregates are exactly representable in f64, so any two exact
    /// summation orders agree bit-for-bit — which is what makes the
    /// interior-sum bit-identity assertions meaningful.
    fn objects(n: usize, seed: u64) -> Vec<SpatialObject> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                SpatialObject::at(x, y, (i % 7) as f64 + 1.0)
            })
            .collect()
    }

    fn grid(n: usize, seed: u64, cell_len: f64) -> GridIndex {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        GridIndex::build(GridSpec::new(bounds, cell_len), &objects(n, seed))
    }

    fn assert_bits(a: &Aggregate, b: &Aggregate, what: &str) {
        assert_eq!(a.count.to_bits(), b.count.to_bits(), "{what}: count");
        assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "{what}: sum");
        assert_eq!(a.sum_sqr.to_bits(), b.sum_sqr.to_bits(), "{what}: sum_sqr");
    }

    #[test]
    fn levels_shrink_to_one_cell() {
        let g = grid(5_000, 3, 1.0); // 100×100 base
        let p = GridPyramid::build(&g);
        assert_eq!(p.num_levels(), 7); // 100→50→25→13→7→4→2→1
        let top = p.level(p.num_levels());
        assert_eq!((top.nx(), top.ny()), (1, 1));
        // Every level conserves total mass exactly (integer measures).
        let total = g.total();
        for l in 1..=p.num_levels() {
            let level = p.level(l);
            let sum: Aggregate = level.cells().iter().copied().sum();
            assert_bits(&sum, &total, &format!("level {l} total"));
            assert_bits(
                &level.rect_sum(0, 0, level.nx() - 1, level.ny() - 1),
                &total,
                &format!("level {l} full rect_sum"),
            );
        }
    }

    #[test]
    fn level_rect_sums_match_base_prefix_bit_for_bit() {
        // Property (satellite 3.1): on level-aligned rectangles, the
        // coarse rect_sum must agree bit-for-bit with the L0 PrefixGrid
        // over the same base cells, for every level and several windows.
        let g = grid(20_000, 17, 1.0);
        let p = GridPyramid::build(&g);
        let base = PrefixGrid::build(&g);
        let spec = g.spec();
        for l in 1..=p.num_levels() {
            let level = p.level(l);
            let f = level.factor();
            let windows = [
                (0, 0, level.nx() - 1, level.ny() - 1),
                (0, 0, level.nx() / 2, level.ny() / 2),
                (
                    level.nx() / 3,
                    level.ny() / 4,
                    level.nx() - 1,
                    level.ny() - 1,
                ),
            ];
            for (cx0, cy0, cx1, cy1) in windows {
                let coarse = level.rect_sum(cx0, cy0, cx1, cy1);
                let fine = base.rect_sum(
                    cx0 * f,
                    cy0 * f,
                    ((cx1 + 1) * f - 1).min(spec.nx() - 1),
                    ((cy1 + 1) * f - 1).min(spec.ny() - 1),
                );
                assert_bits(
                    &coarse,
                    &fine,
                    &format!("level {l} window ({cx0},{cy0})..({cx1},{cy1})"),
                );
            }
        }
    }

    #[test]
    fn builds_are_bit_identical_across_pool_sizes() {
        let g = grid(30_000, 29, 0.5); // 200×200: multiple row chunks
        let reference = GridPyramid::build_with(&g, &WorkerPool::new(1));
        for threads in [2, 4, 8] {
            let p = GridPyramid::build_with(&g, &WorkerPool::new(threads));
            assert_eq!(p.num_levels(), reference.num_levels());
            for l in 1..=p.num_levels() {
                for (i, (a, b)) in reference
                    .level(l)
                    .cells()
                    .iter()
                    .zip(p.level(l).cells())
                    .enumerate()
                {
                    assert_bits(a, b, &format!("threads {threads} level {l} cell {i}"));
                }
            }
        }
    }

    #[test]
    fn estimate_within_its_own_bound_against_truth() {
        // The served answer must honor its *computed* bound against the
        // base grid's exact covered+boundary decomposition.
        let g = grid(20_000, 41, 1.0);
        let p = GridPyramid::build(&g);
        let all = objects(20_000, 41);
        for (i, &(cx, cy, r)) in [
            (50.0, 50.0, 30.0),
            (20.0, 70.0, 15.0),
            (80.0, 30.0, 24.0),
            (50.0, 50.0, 49.0),
        ]
        .iter()
        .enumerate()
        {
            let range = Range::circle(Point::new(cx, cy), r);
            let truth = all
                .iter()
                .filter(|o| range.contains_point(&o.location))
                .count() as f64;
            for epsilon in [0.0, 0.02, 0.1, 0.5] {
                let est = p.estimate(&g, &range, epsilon);
                assert!(
                    (est.aggregate.count - truth).abs() <= est.bound.count + 1e-9,
                    "query {i} ε={epsilon}: |{} − {truth}| > bound {}",
                    est.aggregate.count,
                    est.bound.count
                );
                assert!(est.interior.count <= truth + 1e-9, "interior exceeds truth");
            }
        }
    }

    #[test]
    fn looser_epsilon_serves_coarser_levels() {
        let g = grid(50_000, 53, 0.5);
        let p = GridPyramid::build(&g);
        let range = Range::circle(Point::new(50.0, 50.0), 40.0);
        let tight = p.estimate(&g, &range, 0.0);
        let loose = p.estimate(&g, &range, 0.3);
        assert_eq!(tight.level, 0, "ε = 0 must refine to the base grid");
        assert!(
            loose.level > tight.level,
            "ε = 0.3 should settle above L0, got level {}",
            loose.level
        );
        assert!(
            loose.cells_read < tight.cells_read,
            "coarser serving must touch fewer cells ({} vs {})",
            loose.cells_read,
            tight.cells_read
        );
        assert!(loose.meets(0.3), "served bound must fit the budget");
    }

    #[test]
    fn epsilon_zero_matches_grid_only_decomposition() {
        // At ε = 0 the refinement lands on exactly the base grid's
        // covered + area-fraction-boundary decomposition (same cell set;
        // value equality up to float association).
        let g = grid(10_000, 61, 1.0);
        let p = GridPyramid::build(&g);
        let spec = g.spec();
        let range = Range::circle(Point::new(47.0, 53.0), 21.0);
        let est = p.estimate(&g, &range, 0.0);
        let cls = spec.classify(&range);
        let mut expect = g.aggregate_cells(cls.covered.iter().copied());
        for &id in &cls.boundary {
            let rect = spec.cell_rect_of(id);
            let frac = intersection_area(&range, &rect) / rect.area();
            expect.merge_in(&g.cell(id).scale(frac));
        }
        assert!(
            (est.aggregate.count - expect.count).abs() <= 1e-9 * expect.count.max(1.0),
            "{} vs {}",
            est.aggregate.count,
            expect.count
        );
        assert!(
            (est.aggregate.sum - expect.sum).abs() <= 1e-9 * expect.sum.abs().max(1.0),
            "{} vs {}",
            est.aggregate.sum,
            expect.sum
        );
    }

    #[test]
    fn aligned_rect_is_exact_at_tight_epsilon() {
        // A cell-aligned rectangle has only zero-width boundary cells at
        // L0, so ε = 0 refinement bottoms out with bound 0 and exactly
        // the covered-cell mass. A loose ε may legally stop coarse — but
        // must then stay within its own reported bound.
        let g = grid(10_000, 71, 1.0);
        let p = GridPyramid::build(&g);
        let range = Range::rect(Point::new(10.0, 20.0), Point::new(60.0, 80.0));
        let cls = g.spec().classify(&range);
        let exact = g.aggregate_cells(cls.covered.iter().copied());

        let tight = p.estimate(&g, &range, 0.0);
        assert!(tight.bound.count <= 1e-9, "aligned rect: no boundary error");
        assert_bits(&tight.aggregate, &exact, "aligned rect at ε = 0");

        let loose = p.estimate(&g, &range, 0.25);
        assert!(
            (loose.aggregate.count - exact.count).abs() <= loose.bound.count + 1e-9,
            "loose serving must stay within its reported bound"
        );
        assert!(loose.meets(0.25));
    }

    #[test]
    fn region_empty_prunes_uncovered_areas_and_never_lies() {
        // Objects confined to the left half (x < 40): right-half regions
        // are provably empty from the level-1 probe; regions overlapping
        // the data must never be reported empty.
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let objs: Vec<SpatialObject> = (0..500)
            .map(|i| SpatialObject::at((i % 40) as f64, (i / 40) as f64 * 7.0, 1.0))
            .collect();
        let g = GridIndex::build(GridSpec::new(bounds, 1.0), &objs);
        let p = GridPyramid::build(&g);
        assert!(p.region_empty(60, 10, 61, 11), "far right must prune");
        assert!(p.region_empty(99, 99, 99, 99), "corner must prune");
        // Soundness sweep: wherever region_empty says true, the base
        // cells really are empty.
        let spec = g.spec();
        for iy in 0..spec.ny() - 1 {
            for ix in 0..spec.nx() - 1 {
                if p.region_empty(ix, iy, ix + 1, iy + 1) {
                    for (cx, cy) in [(ix, iy), (ix + 1, iy), (ix, iy + 1), (ix + 1, iy + 1)] {
                        assert_eq!(
                            g.cell(spec.cell_id(cx, cy)).count,
                            0.0,
                            "region_empty lied at ({cx},{cy})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn memory_accounting_is_positive_and_bounded() {
        let g = grid(10_000, 83, 1.0);
        let p = GridPyramid::build(&g);
        let bytes = p.memory_bytes();
        assert!(bytes > 0);
        // Geometric series: all levels together stay under ~2/3 of the
        // base grid's cell+prefix footprint.
        assert!(
            bytes < g.memory_bytes(),
            "pyramid ({bytes}) should be smaller than its base ({})",
            g.memory_bytes()
        );
    }
}
