//! An aggregate point-region quadtree: the classic alternative to the
//! R-tree for local range aggregation.
//!
//! The paper builds on R-trees; a production system would want to know
//! whether that choice matters. This module provides a drop-in aggregate
//! index with the same query API ([`QuadTree::aggregate`] /
//! [`QuadTree::aggregate_clipped`]) so the `micro_index` bench can compare
//! the two substrates on identical workloads. Space is subdivided into
//! four equal quadrants whenever a node exceeds its capacity; every node
//! carries the [`Aggregate`] of its whole subtree, so fully-covered
//! quadrants are answered without descending — the same pruning contract
//! as the aR-tree.
//!
//! Compared to the STR R-tree: build is insertion-based (no global sort),
//! node regions never overlap (no MBR dead space), but unbalanced data
//! yields deep spines where the R-tree stays height-balanced.

use serde::{Deserialize, Serialize};

use fedra_geo::{Point, Range, Rect, RectRelation, SpatialObject};

use crate::{Aggregate, IndexMemory};

/// Build parameters for [`QuadTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuadTreeConfig {
    /// Maximum objects per leaf before it splits.
    pub leaf_capacity: usize,
    /// Maximum tree depth: duplicate-heavy data stops splitting here
    /// (a leaf at max depth simply grows past capacity).
    pub max_depth: usize,
}

impl Default for QuadTreeConfig {
    fn default() -> Self {
        Self {
            leaf_capacity: 32,
            max_depth: 24,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuadNode {
    region: Rect,
    agg: Aggregate,
    /// Indices of the four children (NW, NE, SW, SE) or `u32::MAX` for a
    /// leaf.
    children: [u32; 4],
    /// Object indices (leaves only).
    objects: Vec<u32>,
    depth: usize,
}

const NO_CHILD: u32 = u32::MAX;

impl QuadNode {
    fn is_leaf(&self) -> bool {
        self.children[0] == NO_CHILD
    }
}

/// An aggregate point-region quadtree over a fixed region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuadTree {
    config: QuadTreeConfig,
    objects: Vec<SpatialObject>,
    nodes: Vec<QuadNode>,
}

impl QuadTree {
    /// Builds the tree over `region` by inserting every object.
    ///
    /// The root region is expanded to cover every object, so pruning by
    /// node region is always sound even when callers pass a nominal
    /// region smaller than the data extent.
    ///
    /// # Panics
    /// Panics when `region` is empty.
    pub fn build(region: Rect, objects: Vec<SpatialObject>, config: QuadTreeConfig) -> Self {
        assert!(!region.is_empty(), "quadtree region must be non-empty");
        let region = objects
            .iter()
            .fold(region, |acc, o| acc.union(&Rect::from_point(o.location)));
        let mut tree = Self {
            config,
            objects,
            nodes: vec![QuadNode {
                region,
                agg: Aggregate::ZERO,
                children: [NO_CHILD; 4],
                objects: Vec::new(),
                depth: 0,
            }],
        };
        for i in 0..tree.objects.len() {
            tree.insert(i as u32);
        }
        tree
    }

    /// Builds with the default config over the objects' bounding box.
    pub fn from_objects(objects: &[SpatialObject]) -> Self {
        let region = objects
            .iter()
            .fold(Rect::EMPTY, |acc, o| {
                acc.union(&Rect::from_point(o.location))
            })
            .inflate(1e-9);
        let region = if region.is_empty() {
            Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
        } else {
            region
        };
        Self::build(region, objects.to_vec(), QuadTreeConfig::default())
    }

    fn clamp_into(&self, node: usize, p: &Point) -> Point {
        let r = self.nodes[node].region;
        Point::new(p.x.clamp(r.min.x, r.max.x), p.y.clamp(r.min.y, r.max.y))
    }

    fn quadrant_of(region: &Rect, p: &Point) -> usize {
        let c = region.center();
        match (p.x >= c.x, p.y >= c.y) {
            (false, true) => 0,  // NW
            (true, true) => 1,   // NE
            (false, false) => 2, // SW
            (true, false) => 3,  // SE
        }
    }

    fn quadrant_rect(region: &Rect, q: usize) -> Rect {
        let c = region.center();
        match q {
            0 => Rect::from_corners(Point::new(region.min.x, c.y), Point::new(c.x, region.max.y)),
            1 => Rect::from_corners(c, region.max),
            2 => Rect::from_corners(region.min, c),
            _ => Rect::from_corners(Point::new(c.x, region.min.y), Point::new(region.max.x, c.y)),
        }
    }

    fn insert(&mut self, object: u32) {
        let placement = self.clamp_into(0, &self.objects[object as usize].location);
        let contribution = Aggregate::of(&self.objects[object as usize]);
        let mut node = 0usize;
        loop {
            self.nodes[node].agg.merge_in(&contribution);
            if self.nodes[node].is_leaf() {
                self.nodes[node].objects.push(object);
                let over_capacity = self.nodes[node].objects.len() > self.config.leaf_capacity;
                let can_split = self.nodes[node].depth < self.config.max_depth;
                if over_capacity && can_split {
                    self.split(node);
                }
                return;
            }
            let q = Self::quadrant_of(&self.nodes[node].region, &placement);
            node = self.nodes[node].children[q] as usize;
        }
    }

    fn split(&mut self, node: usize) {
        let region = self.nodes[node].region;
        let depth = self.nodes[node].depth;
        let residents = std::mem::take(&mut self.nodes[node].objects);
        let mut children = [NO_CHILD; 4];
        for (q, child) in children.iter_mut().enumerate() {
            *child = self.nodes.len() as u32;
            self.nodes.push(QuadNode {
                region: Self::quadrant_rect(&region, q),
                agg: Aggregate::ZERO,
                children: [NO_CHILD; 4],
                objects: Vec::new(),
                depth: depth + 1,
            });
        }
        self.nodes[node].children = children;
        for object in residents {
            let placement = self.clamp_into(node, &self.objects[object as usize].location);
            let contribution = Aggregate::of(&self.objects[object as usize]);
            let mut cursor = self.nodes[node].children
                [Self::quadrant_of(&self.nodes[node].region, &placement)]
                as usize;
            loop {
                self.nodes[cursor].agg.merge_in(&contribution);
                if self.nodes[cursor].is_leaf() {
                    self.nodes[cursor].objects.push(object);
                    // No recursive split here: the child will split on the
                    // next insert that overflows it (keeps this loop flat).
                    break;
                }
                let q = Self::quadrant_of(&self.nodes[cursor].region, &placement);
                cursor = self.nodes[cursor].children[q] as usize;
            }
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the tree indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total node count (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Aggregate of every indexed object.
    pub fn total(&self) -> Aggregate {
        self.nodes[0].agg
    }

    /// Exact range aggregation with covered-subtree pruning.
    pub fn aggregate(&self, range: &Range) -> Aggregate {
        let mut acc = Aggregate::ZERO;
        self.aggregate_rec(0, range, None, &mut acc);
        acc
    }

    /// Exact range aggregation restricted to `clip` (see
    /// [`crate::rtree::RTree::aggregate_clipped`]).
    pub fn aggregate_clipped(&self, range: &Range, clip: &Rect) -> Aggregate {
        let mut acc = Aggregate::ZERO;
        self.aggregate_rec(0, range, Some(clip), &mut acc);
        acc
    }

    fn aggregate_rec(&self, node: usize, range: &Range, clip: Option<&Rect>, acc: &mut Aggregate) {
        let n = &self.nodes[node];
        if n.agg.is_zero() {
            return;
        }
        let rel = range.relation(&n.region);
        if rel == RectRelation::Disjoint {
            return;
        }
        if let Some(c) = clip {
            if !c.intersects(&n.region) {
                return;
            }
            if rel == RectRelation::Contained && c.contains_rect(&n.region) {
                acc.merge_in(&n.agg);
                return;
            }
        } else if rel == RectRelation::Contained {
            acc.merge_in(&n.agg);
            return;
        }
        if n.is_leaf() {
            for &oi in &n.objects {
                let o = &self.objects[oi as usize];
                if range.contains_point(&o.location)
                    && clip.is_none_or(|c| c.contains_point(&o.location))
                {
                    acc.merge_in(&Aggregate::of(o));
                }
            }
        } else {
            for &child in &n.children {
                self.aggregate_rec(child as usize, range, clip, acc);
            }
        }
    }
}

impl IndexMemory for QuadTree {
    fn memory_bytes(&self) -> usize {
        let nodes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<QuadNode>() + n.objects.capacity() * std::mem::size_of::<u32>()
            })
            .sum();
        std::mem::size_of::<Self>()
            + self.objects.capacity() * std::mem::size_of::<SpatialObject>()
            + nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize, seed: u64) -> Vec<SpatialObject> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                SpatialObject::at(x, y, (i % 7) as f64)
            })
            .collect()
    }

    fn brute(objs: &[SpatialObject], range: &Range) -> Aggregate {
        objs.iter()
            .filter(|o| range.contains_point(&o.location))
            .fold(Aggregate::ZERO, |a, o| a.merge(&Aggregate::of(o)))
    }

    #[test]
    fn empty_tree() {
        let t = QuadTree::from_objects(&[]);
        assert!(t.is_empty());
        assert_eq!(t.total(), Aggregate::ZERO);
        let q = Range::circle(Point::new(0.0, 0.0), 5.0);
        assert_eq!(t.aggregate(&q), Aggregate::ZERO);
    }

    #[test]
    fn matches_bruteforce_on_circles_and_rects() {
        let objs = scatter(3000, 9);
        let t = QuadTree::from_objects(&objs);
        assert_eq!(t.total().count, 3000.0);
        for (cx, cy, r) in [
            (50.0, 50.0, 12.0),
            (0.0, 0.0, 30.0),
            (95.0, 5.0, 8.0),
            (50.0, 50.0, 300.0),
        ] {
            let q = Range::circle(Point::new(cx, cy), r);
            let got = t.aggregate(&q);
            let want = brute(&objs, &q);
            assert_eq!(got.count, want.count, "at {q}");
            assert!((got.sum - want.sum).abs() < 1e-9);
        }
        let q = Range::rect(Point::new(10.0, 20.0), Point::new(60.0, 70.0));
        assert_eq!(t.aggregate(&q).count, brute(&objs, &q).count);
    }

    #[test]
    fn matches_rtree_on_identical_data() {
        let objs = scatter(5000, 10);
        let quad = QuadTree::from_objects(&objs);
        let rtree = crate::rtree::RTree::from_objects(&objs);
        for i in 0..20 {
            let q = Range::circle(
                Point::new((i as f64 * 13.7) % 100.0, (i as f64 * 7.3) % 100.0),
                6.0,
            );
            assert_eq!(
                quad.aggregate(&q).count,
                rtree.aggregate(&q).count,
                "at {q}"
            );
        }
    }

    #[test]
    fn clipped_queries_match_filter() {
        let objs = scatter(2000, 11);
        let t = QuadTree::from_objects(&objs);
        let range = Range::circle(Point::new(50.0, 50.0), 25.0);
        let clip = Rect::new(Point::new(35.0, 35.0), Point::new(65.0, 55.0));
        let got = t.aggregate_clipped(&range, &clip);
        let want = objs
            .iter()
            .filter(|o| range.contains_point(&o.location) && clip.contains_point(&o.location))
            .count() as f64;
        assert_eq!(got.count, want);
    }

    #[test]
    fn duplicate_points_respect_max_depth() {
        // 1000 identical points can never be separated by splitting; the
        // max-depth valve must stop the recursion.
        let objs = vec![SpatialObject::at(5.0, 5.0, 1.0); 1000];
        let t = QuadTree::build(
            Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            objs,
            QuadTreeConfig {
                leaf_capacity: 4,
                max_depth: 6,
            },
        );
        assert_eq!(t.total().count, 1000.0);
        let q = Range::circle(Point::new(5.0, 5.0), 0.1);
        assert_eq!(t.aggregate(&q).count, 1000.0);
        // Bounded node count despite pathological input.
        assert!(t.node_count() < 200, "nodes: {}", t.node_count());
    }

    #[test]
    fn out_of_region_objects_are_still_counted() {
        // The root region grows to cover stragglers, keeping pruning sound.
        let region = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let objs = vec![
            SpatialObject::at(5.0, 5.0, 1.0),
            SpatialObject::at(50.0, 50.0, 1.0), // far outside the nominal region
        ];
        let t = QuadTree::build(region, objs, QuadTreeConfig::default());
        assert_eq!(t.total().count, 2.0);
        let near = Range::circle(Point::new(5.0, 5.0), 1.0);
        assert_eq!(t.aggregate(&near).count, 1.0);
        let far = Range::circle(Point::new(50.0, 50.0), 1.0);
        assert_eq!(t.aggregate(&far).count, 1.0);
    }

    #[test]
    fn memory_scales_with_data() {
        let small = QuadTree::from_objects(&scatter(100, 12));
        let large = QuadTree::from_objects(&scatter(10_000, 12));
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_region_rejected() {
        QuadTree::build(Rect::EMPTY, vec![], QuadTreeConfig::default());
    }
}
