//! Histograms for the OPTA baseline.
//!
//! The paper compares against "OPTA, an optimal approximate histogram-based
//! solution with provable guarantees \[23\]". Two variants are provided:
//!
//! * [`EquiWidthHistogram`] — fixed uniform buckets; the textbook baseline;
//! * [`MinSkewHistogram`] — a greedy binary-space-partition histogram that
//!   repeatedly splits the bucket with the highest internal *spatial skew*
//!   (sum of squared deviations of fine-grid cell counts) at the best
//!   position, the construction used by optimal/near-optimal spatial
//!   histograms in the literature. This is the default OPTA substrate.
//!
//! Estimation follows the uniform-within-bucket assumption: a query range
//! receives `area(range ∩ bucket) / area(bucket)` of each bucket's
//! aggregate. Errors concentrate in boundary buckets — which is exactly why
//! OPTA loses to the paper's estimators on accuracy while still being fast.

use serde::{Deserialize, Serialize};

use fedra_geo::{intersection_area, Range, Rect, SpatialObject};

use crate::grid::{GridIndex, GridSpec};
use crate::{Aggregate, IndexMemory};

/// A fixed uniform-bucket histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiWidthHistogram {
    grid: GridIndex,
}

impl EquiWidthHistogram {
    /// Builds an equi-width histogram with `cell_len`-sized buckets.
    pub fn build(bounds: Rect, cell_len: f64, objects: &[SpatialObject]) -> Self {
        Self {
            grid: GridIndex::build(GridSpec::new(bounds, cell_len), objects),
        }
    }

    /// Estimates the range aggregate under uniform-within-bucket spread.
    pub fn estimate(&self, range: &Range) -> Aggregate {
        let spec = self.grid.spec();
        let mut acc = Aggregate::ZERO;
        let cls = spec.classify(range);
        for id in &cls.covered {
            acc.merge_in(self.grid.cell(*id));
        }
        for id in &cls.boundary {
            let rect = spec.cell_rect_of(*id);
            let frac = intersection_area(range, &rect) / rect.area();
            acc.merge_in(&self.grid.cell(*id).scale(frac));
        }
        acc
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.grid.spec().num_cells()
    }

    /// Grand total over all buckets.
    pub fn total(&self) -> Aggregate {
        self.grid.total()
    }
}

impl IndexMemory for EquiWidthHistogram {
    fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes()
    }
}

/// One bucket of a [`MinSkewHistogram`]: a rectangle plus its aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Spatial extent of the bucket.
    pub rect: Rect,
    /// Aggregate of the objects inside.
    pub agg: Aggregate,
}

/// Build parameters for [`MinSkewHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinSkewConfig {
    /// Side length of the fine grid the skew statistics are computed on.
    /// Buckets align to this resolution.
    pub resolution: u32,
    /// Number of buckets to produce (the histogram "budget").
    pub budget: usize,
}

impl Default for MinSkewConfig {
    fn default() -> Self {
        Self {
            resolution: 128,
            budget: 256,
        }
    }
}

/// A greedy MinSkew binary-space-partition histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinSkewHistogram {
    buckets: Vec<Bucket>,
    bounds: Rect,
    total: Aggregate,
}

/// A candidate bucket during construction, in fine-grid cell coordinates
/// (inclusive ranges).
struct WorkBucket {
    ix0: u32,
    iy0: u32,
    ix1: u32,
    iy1: u32,
    skew: f64,
}

/// Fine-grid prefix sums of count, count², sum and sum_sqr.
struct FineGrid {
    nx: usize,
    /// (nx+1)×(ny+1) guard-padded prefix arrays.
    count: Vec<f64>,
    count_sq: Vec<f64>,
    sum: Vec<f64>,
    sum_sqr: Vec<f64>,
}

impl FineGrid {
    fn build(bounds: Rect, resolution: u32, objects: &[SpatialObject]) -> Self {
        let nx = resolution as usize;
        let ny = resolution as usize;
        let w = bounds.width() / nx as f64;
        let h = bounds.height() / ny as f64;
        let mut count = vec![0.0; nx * ny];
        let mut sum = vec![0.0; nx * ny];
        let mut sum_sqr = vec![0.0; nx * ny];
        for o in objects {
            let ix = (((o.location.x - bounds.min.x) / w).floor().max(0.0) as usize).min(nx - 1);
            let iy = (((o.location.y - bounds.min.y) / h).floor().max(0.0) as usize).min(ny - 1);
            let id = iy * nx + ix;
            count[id] += 1.0;
            sum[id] += o.measure;
            sum_sqr[id] += o.measure * o.measure;
        }
        // Prefix-sum each statistic (guard row/column of zeros).
        let pw = nx + 1;
        let prefix = |vals: &[f64], square: bool| -> Vec<f64> {
            let mut p = vec![0.0; pw * (ny + 1)];
            for iy in 0..ny {
                for ix in 0..nx {
                    let mut v = vals[iy * nx + ix];
                    if square {
                        v *= v;
                    }
                    p[(iy + 1) * pw + ix + 1] =
                        v + p[(iy + 1) * pw + ix] + p[iy * pw + ix + 1] - p[iy * pw + ix];
                }
            }
            p
        };
        Self {
            nx,
            count: prefix(&count, false),
            count_sq: prefix(&count, true),
            sum: prefix(&sum, false),
            sum_sqr: prefix(&sum_sqr, false),
        }
    }

    #[inline]
    fn rect_stat(&self, p: &[f64], ix0: u32, iy0: u32, ix1: u32, iy1: u32) -> f64 {
        let pw = self.nx + 1;
        let (ix0, iy0, ix1, iy1) = (ix0 as usize, iy0 as usize, ix1 as usize, iy1 as usize);
        p[(iy1 + 1) * pw + ix1 + 1] - p[iy0 * pw + ix1 + 1] - p[(iy1 + 1) * pw + ix0]
            + p[iy0 * pw + ix0]
    }

    /// Spatial skew (SSE of per-cell counts) of a cell rectangle.
    fn skew(&self, ix0: u32, iy0: u32, ix1: u32, iy1: u32) -> f64 {
        let n = ((ix1 - ix0 + 1) as f64) * ((iy1 - iy0 + 1) as f64);
        let s = self.rect_stat(&self.count, ix0, iy0, ix1, iy1);
        let ss = self.rect_stat(&self.count_sq, ix0, iy0, ix1, iy1);
        (ss - s * s / n).max(0.0)
    }

    fn aggregate(&self, ix0: u32, iy0: u32, ix1: u32, iy1: u32) -> Aggregate {
        Aggregate {
            count: self.rect_stat(&self.count, ix0, iy0, ix1, iy1),
            sum: self.rect_stat(&self.sum, ix0, iy0, ix1, iy1),
            sum_sqr: self.rect_stat(&self.sum_sqr, ix0, iy0, ix1, iy1),
        }
    }
}

impl MinSkewHistogram {
    /// Builds the histogram over `bounds` with the given config.
    pub fn build(bounds: Rect, config: MinSkewConfig, objects: &[SpatialObject]) -> Self {
        assert!(!bounds.is_empty(), "histogram bounds must be non-empty");
        assert!(config.resolution >= 1, "resolution must be at least 1");
        assert!(config.budget >= 1, "bucket budget must be at least 1");
        let fine = FineGrid::build(bounds, config.resolution, objects);
        let res = config.resolution;

        let mut work = vec![WorkBucket {
            ix0: 0,
            iy0: 0,
            ix1: res - 1,
            iy1: res - 1,
            skew: fine.skew(0, 0, res - 1, res - 1),
        }];

        while work.len() < config.budget {
            // Greedy: split the bucket with the highest skew at the
            // position that minimizes the children's combined skew.
            let (victim_idx, _) = match work
                .iter()
                .enumerate()
                .filter(|(_, b)| b.skew > 0.0 && (b.ix1 > b.ix0 || b.iy1 > b.iy0))
                .max_by(|a, b| a.1.skew.total_cmp(&b.1.skew))
            {
                Some((i, b)) => (i, b.skew),
                None => break, // nothing left worth splitting
            };
            let b = work.swap_remove(victim_idx);
            let mut best: Option<(f64, WorkBucket, WorkBucket)> = None;
            // Vertical splits.
            for sx in b.ix0..b.ix1 {
                let l = fine.skew(b.ix0, b.iy0, sx, b.iy1);
                let r = fine.skew(sx + 1, b.iy0, b.ix1, b.iy1);
                if best.as_ref().is_none_or(|(c, _, _)| l + r < *c) {
                    best = Some((
                        l + r,
                        WorkBucket {
                            ix0: b.ix0,
                            iy0: b.iy0,
                            ix1: sx,
                            iy1: b.iy1,
                            skew: l,
                        },
                        WorkBucket {
                            ix0: sx + 1,
                            iy0: b.iy0,
                            ix1: b.ix1,
                            iy1: b.iy1,
                            skew: r,
                        },
                    ));
                }
            }
            // Horizontal splits.
            for sy in b.iy0..b.iy1 {
                let lo = fine.skew(b.ix0, b.iy0, b.ix1, sy);
                let hi = fine.skew(b.ix0, sy + 1, b.ix1, b.iy1);
                if best.as_ref().is_none_or(|(c, _, _)| lo + hi < *c) {
                    best = Some((
                        lo + hi,
                        WorkBucket {
                            ix0: b.ix0,
                            iy0: b.iy0,
                            ix1: b.ix1,
                            iy1: sy,
                            skew: lo,
                        },
                        WorkBucket {
                            ix0: b.ix0,
                            iy0: sy + 1,
                            ix1: b.ix1,
                            iy1: b.iy1,
                            skew: hi,
                        },
                    ));
                }
            }
            match best {
                Some((_, l, r)) => {
                    work.push(l);
                    work.push(r);
                }
                None => {
                    work.push(b); // unsplittable single cell
                    break;
                }
            }
        }

        let cw = bounds.width() / res as f64;
        let ch = bounds.height() / res as f64;
        let mut total = Aggregate::ZERO;
        let buckets: Vec<Bucket> = work
            .iter()
            .map(|b| {
                let rect = Rect::from_corners(
                    fedra_geo::Point::new(
                        bounds.min.x + b.ix0 as f64 * cw,
                        bounds.min.y + b.iy0 as f64 * ch,
                    ),
                    fedra_geo::Point::new(
                        bounds.min.x + (b.ix1 + 1) as f64 * cw,
                        bounds.min.y + (b.iy1 + 1) as f64 * ch,
                    ),
                );
                let agg = fine.aggregate(b.ix0, b.iy0, b.ix1, b.iy1);
                total.merge_in(&agg);
                Bucket { rect, agg }
            })
            .collect();

        Self {
            buckets,
            bounds,
            total,
        }
    }

    /// Builds with the default config.
    pub fn from_objects(bounds: Rect, objects: &[SpatialObject]) -> Self {
        Self::build(bounds, MinSkewConfig::default(), objects)
    }

    /// Estimates the range aggregate under uniform-within-bucket spread.
    pub fn estimate(&self, range: &Range) -> Aggregate {
        let bbox = range.bounding_rect();
        let mut acc = Aggregate::ZERO;
        for b in &self.buckets {
            if !bbox.intersects(&b.rect) {
                continue;
            }
            if range.contains_rect(&b.rect) {
                acc.merge_in(&b.agg);
            } else {
                let overlap = intersection_area(range, &b.rect);
                if overlap > 0.0 {
                    acc.merge_in(&b.agg.scale(overlap / b.rect.area()));
                }
            }
        }
        acc
    }

    /// Number of buckets actually produced.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket list (read-only).
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Bounds the histogram covers.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Grand total over all buckets.
    pub fn total(&self) -> Aggregate {
        self.total
    }
}

impl IndexMemory for MinSkewHistogram {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.capacity() * std::mem::size_of::<Bucket>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;

    fn bounds() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    fn uniform_objects(n: usize) -> Vec<SpatialObject> {
        let mut objs = Vec::with_capacity(n);
        let mut state = 42u64;
        for i in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            objs.push(SpatialObject::at(x, y, (i % 3 + 1) as f64));
        }
        objs
    }

    /// Objects concentrated in two hot clusters plus a sparse background —
    /// skewed data where MinSkew should beat equi-width.
    fn skewed_objects(n: usize) -> Vec<SpatialObject> {
        let mut objs = Vec::with_capacity(n);
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            let (x, y) = if i % 10 < 4 {
                (20.0 + next() * 5.0, 20.0 + next() * 5.0)
            } else if i % 10 < 8 {
                (70.0 + next() * 5.0, 75.0 + next() * 5.0)
            } else {
                (next() * 100.0, next() * 100.0)
            };
            objs.push(SpatialObject::at(x, y, 1.0));
        }
        objs
    }

    fn brute(objs: &[SpatialObject], q: &Range) -> f64 {
        objs.iter()
            .filter(|o| q.contains_point(&o.location))
            .count() as f64
    }

    #[test]
    fn equiwidth_total_is_exact() {
        let objs = uniform_objects(1000);
        let h = EquiWidthHistogram::build(bounds(), 10.0, &objs);
        assert_eq!(h.total().count, 1000.0);
        assert_eq!(h.num_buckets(), 100);
    }

    #[test]
    fn equiwidth_whole_domain_query_is_exact() {
        let objs = uniform_objects(500);
        let h = EquiWidthHistogram::build(bounds(), 10.0, &objs);
        let q = Range::rect(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        assert!((h.estimate(&q).count - 500.0).abs() < 1e-6);
    }

    #[test]
    fn equiwidth_estimates_uniform_data_well() {
        let objs = uniform_objects(20_000);
        let h = EquiWidthHistogram::build(bounds(), 5.0, &objs);
        let q = Range::circle(Point::new(50.0, 50.0), 20.0);
        let est = h.estimate(&q).count;
        let exact = brute(&objs, &q);
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.05, "est {est} vs exact {exact}");
    }

    #[test]
    fn minskew_produces_requested_buckets() {
        let objs = skewed_objects(5000);
        let h = MinSkewHistogram::build(
            bounds(),
            MinSkewConfig {
                resolution: 64,
                budget: 100,
            },
            &objs,
        );
        assert_eq!(h.num_buckets(), 100);
        assert_eq!(h.total().count, 5000.0);
    }

    #[test]
    fn minskew_buckets_partition_the_domain() {
        let objs = skewed_objects(3000);
        let h = MinSkewHistogram::build(
            bounds(),
            MinSkewConfig {
                resolution: 32,
                budget: 50,
            },
            &objs,
        );
        // Areas add up to the domain; aggregates add up to the total.
        let area: f64 = h.buckets().iter().map(|b| b.rect.area()).sum();
        assert!((area - bounds().area()).abs() < 1e-6);
        let count: f64 = h.buckets().iter().map(|b| b.agg.count).sum();
        assert_eq!(count, 3000.0);
        // No pairwise interior overlap.
        for (i, a) in h.buckets().iter().enumerate() {
            for b in &h.buckets()[i + 1..] {
                let inter = a.rect.intersection(&b.rect);
                assert!(
                    inter.area() < 1e-9,
                    "buckets overlap: {} vs {}",
                    a.rect,
                    b.rect
                );
            }
        }
    }

    #[test]
    fn minskew_beats_equiwidth_on_skewed_data() {
        let objs = skewed_objects(30_000);
        // Same bucket budget for both: 10×10 equi-width vs 100 MinSkew.
        let ew = EquiWidthHistogram::build(bounds(), 10.0, &objs);
        let ms = MinSkewHistogram::build(
            bounds(),
            MinSkewConfig {
                resolution: 128,
                budget: 100,
            },
            &objs,
        );
        let queries = [
            Range::circle(Point::new(22.0, 22.0), 4.0),
            Range::circle(Point::new(72.0, 77.0), 4.0),
            Range::circle(Point::new(50.0, 50.0), 15.0),
            Range::circle(Point::new(21.0, 23.0), 8.0),
        ];
        let (mut err_ew, mut err_ms) = (0.0, 0.0);
        for q in &queries {
            let exact = brute(&objs, q).max(1.0);
            err_ew += (ew.estimate(q).count - exact).abs() / exact;
            err_ms += (ms.estimate(q).count - exact).abs() / exact;
        }
        assert!(
            err_ms < err_ew,
            "MinSkew total error {err_ms} should beat equi-width {err_ew}"
        );
    }

    #[test]
    fn minskew_whole_domain_query_is_exact() {
        let objs = skewed_objects(2000);
        let h = MinSkewHistogram::from_objects(bounds(), &objs);
        let q = Range::rect(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        assert!((h.estimate(&q).count - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn minskew_empty_data() {
        let h = MinSkewHistogram::from_objects(bounds(), &[]);
        let q = Range::circle(Point::new(50.0, 50.0), 10.0);
        assert_eq!(h.estimate(&q), Aggregate::ZERO);
        assert_eq!(h.total(), Aggregate::ZERO);
    }

    #[test]
    fn minskew_disjoint_query_is_zero() {
        let objs = uniform_objects(100);
        let h = MinSkewHistogram::from_objects(bounds(), &objs);
        let q = Range::circle(Point::new(500.0, 500.0), 10.0);
        assert_eq!(h.estimate(&q).count, 0.0);
    }

    #[test]
    fn budget_one_gives_single_bucket() {
        let objs = uniform_objects(100);
        let h = MinSkewHistogram::build(
            bounds(),
            MinSkewConfig {
                resolution: 16,
                budget: 1,
            },
            &objs,
        );
        assert_eq!(h.num_buckets(), 1);
        assert_eq!(h.buckets()[0].rect, bounds());
    }

    #[test]
    fn memory_scales_with_buckets() {
        let objs = uniform_objects(1000);
        let small = MinSkewHistogram::build(
            bounds(),
            MinSkewConfig {
                resolution: 32,
                budget: 10,
            },
            &objs,
        );
        let large = MinSkewHistogram::build(
            bounds(),
            MinSkewConfig {
                resolution: 32,
                budget: 200,
            },
            &objs,
        );
        assert!(large.memory_bytes() >= small.memory_bytes());
    }
}
