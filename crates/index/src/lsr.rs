//! The LSR-Forest: level-sampling R-trees for O(log 1/ε) local queries.
//!
//! Alg. 5 of the paper builds, at each silo, a forest of aggregate R-trees
//! `T_0, T_1, …, T_{log n}` where `T_0` indexes all objects and each
//! subsequent level keeps every object of the previous level independently
//! with probability 1/2. A local range aggregation query (Alg. 6) picks a
//! level `l` from the accuracy target `(ε, δ)` and the grid-based rough
//! estimate `sum₀` (Lemma 1), answers on the ~`n/2^l`-object tree `T_l`,
//! and re-scales by `2^l`. The level rule is
//!
//! ```text
//! l = ⌊log₂( ε² · sum₀ / (3 · ln(2/δ)) )⌋   clamped to [0, max_level]
//! ```
//!
//! so larger expected results tolerate coarser samples, and the expected
//! number of samples *inside the range* stays ≈ 3·ln(2/δ)/ε² regardless of
//! silo size — that is why the local cost becomes independent of `n`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use fedra_geo::{Range, Rect, SpatialObject};

use crate::pool::WorkerPool;
use crate::rtree::{RTree, RTreeConfig};
use crate::{Aggregate, IndexMemory};

/// A level-sampled R-tree forest (Sec. 5 of the paper).
///
/// ```
/// use fedra_geo::{Point, Range, SpatialObject};
/// use fedra_index::lsr::LsrForest;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let objects: Vec<SpatialObject> = (0..10_000)
///     .map(|i| SpatialObject::at((i % 100) as f64, (i / 100) as f64, 1.0))
///     .collect();
/// let mut rng = StdRng::seed_from_u64(7);
/// let forest = LsrForest::from_objects(&objects, &mut rng);
///
/// // Level 0 is exact; deeper levels trade accuracy for speed.
/// let query = Range::circle(Point::new(50.0, 50.0), 20.0);
/// let exact = forest.query_at_level(&query, 0).count;
/// let (approx, level) = forest.query(&query, 0.2, 0.05, exact);
/// assert!(level > 0);
/// assert!((approx.count - exact).abs() / exact < 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LsrForest {
    levels: Vec<RTree>,
}

impl LsrForest {
    /// Builds the forest (Alg. 5). O(n log n) time and space overall: the
    /// level sizes form a geometric series, so the forest costs about as
    /// much as two plain R-trees.
    ///
    /// Sampling uses the caller's RNG so builds are reproducible.
    pub fn build<R: Rng + ?Sized>(
        objects: &[SpatialObject],
        config: RTreeConfig,
        rng: &mut R,
    ) -> Self {
        Self::build_with(objects, config, rng, &WorkerPool::sequential())
    }

    /// Builds the forest with the level trees bulk-loaded on a
    /// [`WorkerPool`]. All level samples are drawn first — the RNG stream
    /// defines the nested levels (level `l` samples level `l−1`), so
    /// sampling stays sequential and consumes exactly the same stream as
    /// the sequential build — then `T_0` bulk-loads with pooled sorts and
    /// the independent sampled trees bulk-load concurrently. Each sample
    /// vector is handed to its tree by value (no per-level copy).
    pub fn build_with<R: Rng + ?Sized>(
        objects: &[SpatialObject],
        config: RTreeConfig,
        rng: &mut R,
        pool: &WorkerPool,
    ) -> Self {
        if objects.is_empty() {
            return Self {
                levels: vec![RTree::bulk_load(Vec::new(), config)],
            };
        }
        let max_level = (objects.len() as f64).log2().floor() as usize;
        let mut samples: Vec<Vec<SpatialObject>> = Vec::new();
        for _ in 1..=max_level {
            let prev: &[SpatialObject] = match samples.last() {
                None => objects,
                Some(s) => s,
            };
            let sampled: Vec<SpatialObject> = prev
                .iter()
                .filter(|_| rng.random::<bool>())
                .copied()
                .collect();
            if sampled.is_empty() {
                break;
            }
            samples.push(sampled);
        }
        // T_0 dominates the build cost: it gets the pool's parallel STR
        // sorts. The sampled trees are independent of each other and run
        // one per worker (sequential sorts — they are already on the pool).
        let base = RTree::bulk_load_with(objects.to_vec(), config, pool);
        let rest = pool.map_vec(samples, |_, sampled| RTree::bulk_load(sampled, config));
        let mut levels = Vec::with_capacity(1 + rest.len());
        levels.push(base);
        levels.extend(rest);
        Self { levels }
    }

    /// Builds with the default R-tree configuration.
    pub fn from_objects<R: Rng + ?Sized>(objects: &[SpatialObject], rng: &mut R) -> Self {
        Self::build(objects, RTreeConfig::default(), rng)
    }

    /// Number of levels actually built (`T_0 … T_{levels−1}`).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The full-resolution tree `T_0` (also the EXACT local index).
    pub fn base(&self) -> &RTree {
        &self.levels[0]
    }

    /// Access one level's tree (tests, diagnostics).
    pub fn level(&self, l: usize) -> Option<&RTree> {
        self.levels.get(l)
    }

    /// The Lemma-1 level selection rule, clamped to the available levels.
    ///
    /// * `epsilon` — target approximation ratio (ε in Definition 3);
    /// * `delta` — failure probability upper bound;
    /// * `sum0` — rough COUNT estimate of the query result from the grid
    ///   index (the paper: "the aggregation result of grids that intersect
    ///   with the query range").
    pub fn select_level(&self, epsilon: f64, delta: f64, sum0: f64) -> usize {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be a probability in (0, 1)"
        );
        if sum0 <= 0.0 {
            return 0;
        }
        let raw = (epsilon * epsilon * sum0 / (3.0 * (2.0 / delta).ln())).log2();
        if !raw.is_finite() || raw <= 0.0 {
            return 0;
        }
        (raw.floor() as usize).min(self.levels.len() - 1)
    }

    /// Alg. 6: answers the local range aggregation query on level `l` and
    /// re-scales by `2^l`. The returned aggregate is an unbiased estimate
    /// of the exact local answer.
    pub fn query_at_level(&self, range: &Range, level: usize) -> Aggregate {
        let l = level.min(self.levels.len() - 1);
        self.levels[l].aggregate(range).scale((1u64 << l) as f64)
    }

    /// Alg. 6 end-to-end: select the level from `(ε, δ, sum₀)` and query.
    /// Returns the estimate together with the level used (for diagnostics
    /// and the Fig. 6/7 sweeps).
    pub fn query(&self, range: &Range, epsilon: f64, delta: f64, sum0: f64) -> (Aggregate, usize) {
        let l = self.select_level(epsilon, delta, sum0);
        (self.query_at_level(range, l), l)
    }

    /// Clipped variant used for the per-grid-cell contributions of
    /// NonIID-est+LSR: estimates the aggregate of objects in
    /// `range ∩ clip`, re-scaled from level `l`.
    pub fn query_clipped_at_level(&self, range: &Range, clip: &Rect, level: usize) -> Aggregate {
        let l = level.min(self.levels.len() - 1);
        self.levels[l]
            .aggregate_clipped(range, clip)
            .scale((1u64 << l) as f64)
    }

    /// Number of objects in the base level.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the base level is empty.
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }
}

impl IndexMemory for LsrForest {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.levels.iter().map(|t| t.memory_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn objects(n: usize, seed: u64) -> Vec<SpatialObject> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                SpatialObject::at(
                    rng.random_range(0.0..100.0),
                    rng.random_range(0.0..100.0),
                    (i % 5) as f64 + 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn empty_forest_has_single_empty_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = LsrForest::from_objects(&[], &mut rng);
        assert_eq!(f.num_levels(), 1);
        assert!(f.is_empty());
        let q = Range::circle(Point::new(0.0, 0.0), 5.0);
        assert_eq!(f.query_at_level(&q, 0), Aggregate::ZERO);
        assert_eq!(f.query_at_level(&q, 7), Aggregate::ZERO);
    }

    #[test]
    fn level_zero_is_exact() {
        let objs = objects(500, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let f = LsrForest::from_objects(&objs, &mut rng);
        let q = Range::circle(Point::new(50.0, 50.0), 20.0);
        let exact = RTree::from_objects(&objs).aggregate(&q);
        assert_eq!(f.query_at_level(&q, 0), exact);
    }

    #[test]
    fn levels_shrink_geometrically() {
        let objs = objects(4096, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let f = LsrForest::from_objects(&objs, &mut rng);
        assert!(f.num_levels() >= 8, "got {} levels", f.num_levels());
        for l in 1..f.num_levels() {
            let prev = f.level(l - 1).unwrap().len();
            let cur = f.level(l).unwrap().len();
            assert!(cur <= prev, "level {l} grew: {cur} > {prev}");
            // With n ≥ a few hundred the binomial is concentrated; allow
            // generous slack for the small deep levels.
            if prev >= 256 {
                let ratio = cur as f64 / prev as f64;
                assert!((0.35..=0.65).contains(&ratio), "level {l} ratio {ratio}");
            }
        }
    }

    #[test]
    fn level_sampling_is_nested() {
        // Every object at level l must exist at level l−1 (Alg. 5 samples
        // from the previous level, not from scratch).
        let objs = objects(1024, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let f = LsrForest::from_objects(&objs, &mut rng);
        let everything = Range::rect(Point::new(-1.0, -1.0), Point::new(101.0, 101.0));
        for l in 1..f.num_levels() {
            let upper: std::collections::HashSet<(u64, u64)> = f
                .level(l - 1)
                .unwrap()
                .query_objects(&everything)
                .iter()
                .map(|o| (o.location.x.to_bits(), o.location.y.to_bits()))
                .collect();
            for o in f.level(l).unwrap().query_objects(&everything) {
                assert!(
                    upper.contains(&(o.location.x.to_bits(), o.location.y.to_bits())),
                    "level {l} object missing from level {}",
                    l - 1
                );
            }
        }
    }

    #[test]
    fn select_level_monotone_in_sum0_and_epsilon() {
        let objs = objects(65536, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let f = LsrForest::from_objects(&objs, &mut rng);
        let l_small = f.select_level(0.1, 0.01, 100.0);
        let l_large = f.select_level(0.1, 0.01, 100_000.0);
        assert!(l_large >= l_small);
        let l_tight = f.select_level(0.01, 0.01, 100_000.0);
        let l_loose = f.select_level(0.5, 0.01, 100_000.0);
        assert!(l_loose >= l_tight);
        // Tighter delta → lower level.
        let l_strict = f.select_level(0.1, 1e-9, 100_000.0);
        let l_lax = f.select_level(0.1, 0.1, 100_000.0);
        assert!(l_lax >= l_strict);
    }

    #[test]
    fn select_level_formula_matches_lemma1() {
        let objs = objects(1 << 16, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let f = LsrForest::from_objects(&objs, &mut rng);
        let (eps, delta, sum0) = (0.1, 0.01, 50_000.0);
        let expected = ((eps * eps * sum0) / (3.0 * (2.0f64 / delta).ln()))
            .log2()
            .floor() as usize;
        assert_eq!(
            f.select_level(eps, delta, sum0),
            expected.min(f.num_levels() - 1)
        );
    }

    #[test]
    fn select_level_handles_degenerate_inputs() {
        let objs = objects(256, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let f = LsrForest::from_objects(&objs, &mut rng);
        assert_eq!(f.select_level(0.1, 0.01, 0.0), 0);
        assert_eq!(f.select_level(0.1, 0.01, -5.0), 0);
        assert_eq!(f.select_level(1e-6, 0.01, 10.0), 0); // tiny ε → level 0
    }

    #[test]
    #[should_panic(expected = "delta must be a probability")]
    fn select_level_rejects_bad_delta() {
        let mut rng = StdRng::seed_from_u64(14);
        let f = LsrForest::from_objects(&objects(16, 14), &mut rng);
        f.select_level(0.1, 1.5, 10.0);
    }

    #[test]
    fn estimate_is_unbiased_across_builds() {
        // E[res_l · 2^l] = res (Lemma 1). Average many independently
        // sampled forests and check the mean converges to the exact count.
        let objs = objects(2048, 15);
        let q = Range::circle(Point::new(50.0, 50.0), 25.0);
        let exact = RTree::from_objects(&objs).aggregate(&q).count;
        assert!(exact > 100.0, "test range too small: {exact}");
        let trials = 300;
        let level = 3;
        let mut sum = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + t);
            let f = LsrForest::from_objects(&objs, &mut rng);
            sum += f.query_at_level(&q, level).count;
        }
        let mean = sum / trials as f64;
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.05, "mean {mean} vs exact {exact} (rel {rel})");
    }

    #[test]
    fn query_uses_selected_level() {
        let objs = objects(1 << 14, 16);
        let mut rng = StdRng::seed_from_u64(17);
        let f = LsrForest::from_objects(&objs, &mut rng);
        let q = Range::circle(Point::new(50.0, 50.0), 30.0);
        let (est, level) = f.query(&q, 0.2, 0.05, 4000.0);
        assert_eq!(level, f.select_level(0.2, 0.05, 4000.0));
        assert!(est.count >= 0.0);
    }

    #[test]
    fn clipped_query_scales_like_unclipped() {
        let objs = objects(4096, 18);
        let mut rng = StdRng::seed_from_u64(19);
        let f = LsrForest::from_objects(&objs, &mut rng);
        let q = Range::circle(Point::new(50.0, 50.0), 30.0);
        let clip = Rect::new(Point::new(40.0, 40.0), Point::new(60.0, 60.0));
        let whole_plane = Rect::new(Point::new(-1e9, -1e9), Point::new(1e9, 1e9));
        let a = f.query_clipped_at_level(&q, &whole_plane, 2);
        let b = f.query_at_level(&q, 2);
        assert_eq!(a, b);
        let clipped = f.query_clipped_at_level(&q, &clip, 2);
        assert!(clipped.count <= a.count);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let objs = objects(10_000, 22);
        let mut rng_seq = StdRng::seed_from_u64(23);
        let mut rng_par = StdRng::seed_from_u64(23);
        let seq = LsrForest::build(&objs, RTreeConfig::default(), &mut rng_seq);
        let par = LsrForest::build_with(
            &objs,
            RTreeConfig::default(),
            &mut rng_par,
            &WorkerPool::new(4),
        );
        // Same RNG stream → same levels; same sorts → same trees.
        assert_eq!(rng_seq.random::<u64>(), rng_par.random::<u64>());
        assert_eq!(seq.num_levels(), par.num_levels());
        let q = Range::circle(Point::new(50.0, 50.0), 25.0);
        for l in 0..seq.num_levels() {
            let (a, b) = (seq.level(l).unwrap(), par.level(l).unwrap());
            assert_eq!(a.len(), b.len(), "level {l} size");
            assert_eq!(a.total().sum.to_bits(), b.total().sum.to_bits());
            assert_eq!(
                a.aggregate(&q).sum.to_bits(),
                b.aggregate(&q).sum.to_bits(),
                "level {l} query"
            );
        }
    }

    #[test]
    fn memory_is_about_twice_a_single_tree() {
        let objs = objects(1 << 14, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let f = LsrForest::from_objects(&objs, &mut rng);
        let single = RTree::from_objects(&objs);
        let ratio = f.memory_bytes() as f64 / single.memory_bytes() as f64;
        // Geometric series: Σ 2^{-i} = 2, modest slack for fixed overheads.
        assert!((1.5..=2.6).contains(&ratio), "ratio {ratio}");
    }
}
