//! Spatial indexes for the `fedra` data federation.
//!
//! One crate, four index families — everything the paper's query pipeline
//! needs, each with the aggregate triple `(COUNT, SUM, SUM_SQR)` baked into
//! its nodes so a single traversal answers any aggregation function:
//!
//! * [`grid`] — the grid index of Alg. 1: per-silo cell aggregates, the
//!   merged federation index `g₀`, cell classification against a query
//!   range (covered vs boundary cells), and a 2-D cumulative array
//!   ([`grid::PrefixGrid`]) implementing the O(1) rectangle-sum remark of
//!   Sec. 4.2.1;
//! * [`pyramid`] — multi-resolution 2×2 coarsenings of a grid index
//!   ([`GridPyramid`]), each level with its own prefix array, serving
//!   range aggregates from the coarsest cells whose computed boundary
//!   error fits an ε budget;
//! * [`rtree`] — an aggregate R-tree (STR bulk-loaded) giving exact local
//!   range aggregation in O(log n): the substrate of the EXACT baseline
//!   and of every LSR-Forest level;
//! * [`lsr`] — the LSR-Forest of Sec. 5: a forest of level-sampled
//!   aggregate R-trees with the Lemma-1 level-selection rule, reducing the
//!   expected local query cost to O(log 1/ε);
//! * [`histogram`] — equi-width and MinSkew-style adaptive histograms:
//!   the substrate of the OPTA baseline;
//! * [`quadtree`] — an aggregate point-region quadtree with the same
//!   query contract as the R-tree, kept as the local-index ablation.
//!
//! The [`Aggregate`] monoid and [`AggFunc`] live at the crate root, as does
//! the [`IndexMemory`] trait backing the paper's "memory of indices"
//! experiment metric (Figs. 3d–9d).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod agg;
pub mod grid;
pub mod histogram;
pub mod lsr;
pub mod pool;
pub mod pyramid;
pub mod quadtree;
pub mod rtree;

pub use agg::{AggFunc, Aggregate};
pub use pyramid::{GridPyramid, PyramidEstimate, PyramidLevel};

/// Memory accounting for the "memory of indices" metric (Figs. 3d–9d).
///
/// Implementations report the *resident* size of the index: the struct
/// itself plus every heap allocation it owns. The numbers are estimates
/// (capacity-based, like `Vec::capacity × size_of::<T>`), which is exactly
/// what the paper reports — index footprint, not allocator overhead.
pub trait IndexMemory {
    /// Estimated resident bytes of the index.
    fn memory_bytes(&self) -> usize;
}
