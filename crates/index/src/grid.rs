//! The grid index of Alg. 1 and its cumulative-array acceleration.
//!
//! The service provider asks every silo for a [`GridIndex`] over a shared
//! [`GridSpec`], then merges them into the federation-wide index `g₀`
//! ([`GridIndex::merge`]). Estimation (Algs. 2–3) classifies grid cells
//! against the query range with [`GridSpec::classify`]; the cumulative
//! array of the Sec. 4.2.1 remark is [`PrefixGrid`], which answers
//! rectangle-of-cells aggregates in O(1) by inclusion–exclusion.

use serde::{Deserialize, Serialize};

use fedra_geo::{Point, Range, Rect, RectRelation, SpatialObject};

use crate::pool::WorkerPool;
use crate::{Aggregate, IndexMemory};

/// Object-chunk size for [`GridIndex::build_with`]. A function of nothing
/// but this constant — never the pool size — so chunk boundaries (and
/// therefore the float-merge order) are identical for every pool size.
const BUILD_CHUNK_OBJECTS: usize = 32 * 1024;

/// Cell-range chunk size for [`GridIndex::merge_with`].
const MERGE_CHUNK_CELLS: usize = 8 * 1024;

/// The geometry of a grid: bounds plus cell side length.
///
/// All silos and the provider must agree on one `GridSpec` so that cell `i`
/// means the same square everywhere — the estimators divide aggregates of
/// cell `i` in `g₀` by aggregates of cell `i` in `g_k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    bounds: Rect,
    cell_len: f64,
    nx: u32,
    ny: u32,
}

/// Flat identifier of a grid cell: `iy * nx + ix`.
pub type CellId = u32;

/// Cells of a grid relevant to a query range, split by their relation.
///
/// * `covered` — cells fully inside the range. Their exact contribution is
///   known from `g₀` directly (Sec. 4.2.2 remark), no estimation needed.
/// * `boundary` — cells partially overlapping the range. Only these need
///   estimation, and only these travel on the wire for NonIID-est; there
///   are O(√|g₀|) of them, which is where the communication bound comes
///   from.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellClassification {
    /// Cells fully covered by the range.
    pub covered: Vec<CellId>,
    /// Cells intersecting, but not covered by, the range.
    pub boundary: Vec<CellId>,
}

impl CellClassification {
    /// Total number of relevant cells.
    pub fn len(&self) -> usize {
        self.covered.len() + self.boundary.len()
    }

    /// Whether no cell intersects the range.
    pub fn is_empty(&self) -> bool {
        self.covered.is_empty() && self.boundary.is_empty()
    }

    /// Iterates over all relevant cells (covered, then boundary).
    pub fn iter(&self) -> impl Iterator<Item = CellId> + '_ {
        self.covered.iter().chain(self.boundary.iter()).copied()
    }
}

impl GridSpec {
    /// Creates a grid covering `bounds` with square cells of side
    /// `cell_len` (the paper's grid length `L`, swept in Fig. 5).
    ///
    /// # Panics
    /// Panics if `bounds` is empty or `cell_len` is not strictly positive —
    /// a grid over nothing indicates a configuration bug upstream.
    pub fn new(bounds: Rect, cell_len: f64) -> Self {
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        assert!(
            cell_len > 0.0 && cell_len.is_finite(),
            "grid cell length must be positive and finite, got {cell_len}"
        );
        let nx = (bounds.width() / cell_len).ceil().max(1.0) as u32;
        let ny = (bounds.height() / cell_len).ceil().max(1.0) as u32;
        Self {
            bounds,
            cell_len,
            nx,
            ny,
        }
    }

    /// Grid bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Cell side length (`L`).
    pub fn cell_len(&self) -> f64 {
        self.cell_len
    }

    /// Number of columns.
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells, `|g|` in the paper's complexity bounds.
    pub fn num_cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Flat id of the cell at column `ix`, row `iy`.
    #[inline]
    pub fn cell_id(&self, ix: u32, iy: u32) -> CellId {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Column/row of a flat cell id.
    #[inline]
    pub fn cell_coords(&self, id: CellId) -> (u32, u32) {
        (id % self.nx, id / self.nx)
    }

    /// The rectangle of cell `(ix, iy)`.
    ///
    /// The last column/row may extend past `bounds` (cells are full
    /// squares); this keeps cell areas uniform, which the area-fraction
    /// fallbacks rely on.
    pub fn cell_rect(&self, ix: u32, iy: u32) -> Rect {
        let x0 = self.bounds.min.x + ix as f64 * self.cell_len;
        let y0 = self.bounds.min.y + iy as f64 * self.cell_len;
        Rect::from_corners(
            Point::new(x0, y0),
            Point::new(x0 + self.cell_len, y0 + self.cell_len),
        )
    }

    /// The rectangle of a flat cell id.
    pub fn cell_rect_of(&self, id: CellId) -> Rect {
        let (ix, iy) = self.cell_coords(id);
        self.cell_rect(ix, iy)
    }

    /// The cell containing `p`, clamped to the grid for points on (or
    /// marginally past) the outer boundary. Returns `None` for points
    /// strictly outside the bounds by more than one cell — those indicate
    /// data outside the agreed federation region.
    pub fn cell_of(&self, p: &Point) -> Option<CellId> {
        let fx = (p.x - self.bounds.min.x) / self.cell_len;
        let fy = (p.y - self.bounds.min.y) / self.cell_len;
        if fx < -1.0 || fy < -1.0 || fx > self.nx as f64 + 1.0 || fy > self.ny as f64 + 1.0 {
            return None;
        }
        let ix = (fx.floor().max(0.0) as u32).min(self.nx - 1);
        let iy = (fy.floor().max(0.0) as u32).min(self.ny - 1);
        Some(self.cell_id(ix, iy))
    }

    /// Inclusive column/row ranges of the cells whose rectangles intersect
    /// `rect`, or `None` when `rect` misses the grid entirely.
    fn cell_span(&self, rect: &Rect) -> Option<(u32, u32, u32, u32)> {
        let clipped = rect.intersection(&Rect::from_corners(
            self.bounds.min,
            Point::new(
                self.bounds.min.x + self.nx as f64 * self.cell_len,
                self.bounds.min.y + self.ny as f64 * self.cell_len,
            ),
        ));
        if clipped.is_empty() {
            return None;
        }
        let ix0 = ((clipped.min.x - self.bounds.min.x) / self.cell_len)
            .floor()
            .max(0.0) as u32;
        let iy0 = ((clipped.min.y - self.bounds.min.y) / self.cell_len)
            .floor()
            .max(0.0) as u32;
        let ix1 =
            (((clipped.max.x - self.bounds.min.x) / self.cell_len).floor() as u32).min(self.nx - 1);
        let iy1 =
            (((clipped.max.y - self.bounds.min.y) / self.cell_len).floor() as u32).min(self.ny - 1);
        Some((ix0, iy0, ix1, iy1))
    }

    /// All cells whose rectangle intersects the query range.
    ///
    /// This is the cell set the estimators call "grids which intersect
    /// with R" — `sum₀` and `sum_k` in Alg. 2 aggregate over exactly these.
    pub fn cells_intersecting(&self, range: &Range) -> Vec<CellId> {
        let mut out = Vec::new();
        let Some((ix0, iy0, ix1, iy1)) = self.cell_span(&range.bounding_rect()) else {
            return out;
        };
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                if range.intersects_rect(&self.cell_rect(ix, iy)) {
                    out.push(self.cell_id(ix, iy));
                }
            }
        }
        out
    }

    /// Classifies cells into covered / boundary sets (Sec. 4.2.2 remark).
    pub fn classify(&self, range: &Range) -> CellClassification {
        let mut out = CellClassification::default();
        let Some((ix0, iy0, ix1, iy1)) = self.cell_span(&range.bounding_rect()) else {
            return out;
        };
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                match range.relation(&self.cell_rect(ix, iy)) {
                    RectRelation::Disjoint => {}
                    RectRelation::Contained => out.covered.push(self.cell_id(ix, iy)),
                    RectRelation::Intersecting => out.boundary.push(self.cell_id(ix, iy)),
                }
            }
        }
        out
    }
}

/// A grid index: one [`Aggregate`] per cell over a [`GridSpec`].
///
/// Built once per silo (Alg. 1, lines 1–3) and merged into the federation
/// index `g₀` at the provider.
///
/// ```
/// use fedra_geo::{Point, Range, Rect, SpatialObject};
/// use fedra_index::grid::{GridIndex, GridSpec, PrefixGrid};
///
/// let spec = GridSpec::new(
///     Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
///     2.5,
/// );
/// let silo_a = GridIndex::build(spec, &[SpatialObject::at(2.0, 2.0, 7.0)]);
/// let silo_b = GridIndex::build(spec, &[SpatialObject::at(1.0, 1.0, 3.0)]);
///
/// // Alg. 1: merge per-silo grids into the federation grid g0.
/// let g0 = GridIndex::merge([&silo_a, &silo_b]).unwrap();
/// assert_eq!(g0.cell(0).count, 2.0);
/// assert_eq!(g0.cell(0).sum, 10.0);
///
/// // The cumulative array answers cell-range sums in O(1).
/// let prefix = PrefixGrid::build(&g0);
/// let q = Range::circle(Point::new(2.0, 2.0), 1.5);
/// assert_eq!(prefix.aggregate_intersecting(&q).count, 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridIndex {
    spec: GridSpec,
    cells: Vec<Aggregate>,
    total: Aggregate,
    /// Objects that fell outside the grid bounds (counted for diagnostics;
    /// they are invisible to grid-based estimation).
    outside: u64,
}

impl GridIndex {
    /// Builds the grid index for a set of spatial objects — the silo-side
    /// half of Alg. 1. O(n) time, O(|g|) space.
    pub fn build(spec: GridSpec, objects: &[SpatialObject]) -> Self {
        Self::build_with(spec, objects, &WorkerPool::sequential())
    }

    /// Builds the grid index with sharded accumulators on a [`WorkerPool`]:
    /// each worker folds a contiguous object chunk into its own cell
    /// vector, and the shards merge in chunk order. Chunk boundaries
    /// depend only on the input size, so the result is bit-identical for
    /// every pool size (including the sequential [`GridIndex::build`]).
    pub fn build_with(spec: GridSpec, objects: &[SpatialObject], pool: &WorkerPool) -> Self {
        if objects.len() <= BUILD_CHUNK_OBJECTS {
            return Self::build_shard(spec, objects);
        }
        let chunks: Vec<&[SpatialObject]> = objects.chunks(BUILD_CHUNK_OBJECTS).collect();
        let shards = pool.map(&chunks, |_, chunk| Self::build_shard(spec, chunk));
        let mut shards = shards.into_iter();
        // At least one shard exists: objects.len() > BUILD_CHUNK_OBJECTS.
        let mut merged = match shards.next() {
            Some(first) => first,
            None => Self::empty(spec),
        };
        for shard in shards {
            for (acc, cell) in merged.cells.iter_mut().zip(&shard.cells) {
                acc.merge_in(cell);
            }
            merged.total.merge_in(&shard.total);
            merged.outside += shard.outside;
        }
        merged
    }

    /// One worker's share of [`GridIndex::build_with`] (also the whole
    /// build when the input fits a single chunk).
    fn build_shard(spec: GridSpec, objects: &[SpatialObject]) -> Self {
        let mut cells = vec![Aggregate::ZERO; spec.num_cells()];
        let mut total = Aggregate::ZERO;
        let mut outside = 0;
        for o in objects {
            match spec.cell_of(&o.location) {
                Some(id) => {
                    let a = Aggregate::of(o);
                    cells[id as usize].merge_in(&a);
                    total.merge_in(&a);
                }
                None => outside += 1,
            }
        }
        Self {
            spec,
            cells,
            total,
            outside,
        }
    }

    /// An all-zero grid index (useful as a merge accumulator).
    pub fn empty(spec: GridSpec) -> Self {
        Self {
            spec,
            cells: vec![Aggregate::ZERO; spec.num_cells()],
            total: Aggregate::ZERO,
            outside: 0,
        }
    }

    /// Merges silo grid indices into the federation index `g₀`
    /// (Alg. 1, provider side). O(Σ|gᵢ|) time.
    ///
    /// # Panics
    /// Panics if the specs disagree — silos must build over the shared spec.
    pub fn merge<'a>(indices: impl IntoIterator<Item = &'a GridIndex>) -> Option<GridIndex> {
        let refs: Vec<&GridIndex> = indices.into_iter().collect();
        Self::merge_with(&refs, &WorkerPool::sequential())
    }

    /// Merges silo grid indices with the cell space chunked across a
    /// [`WorkerPool`]. Every cell folds its silos in silo order, exactly
    /// like the sequential [`GridIndex::merge`], so the result is
    /// bit-identical for every pool size.
    ///
    /// # Panics
    /// Panics if the specs disagree — silos must build over the shared spec.
    pub fn merge_with(indices: &[&GridIndex], pool: &WorkerPool) -> Option<GridIndex> {
        let first = *indices.first()?;
        for g in &indices[1..] {
            assert_eq!(
                g.spec, first.spec,
                "cannot merge grid indices over different specs"
            );
        }
        let num_cells = first.spec.num_cells();
        let ranges: Vec<(usize, usize)> = (0..num_cells)
            .step_by(MERGE_CHUNK_CELLS.max(1))
            .map(|lo| (lo, (lo + MERGE_CHUNK_CELLS).min(num_cells)))
            .collect();
        let chunks = pool.map(&ranges, |_, &(lo, hi)| {
            (lo..hi)
                .map(|i| {
                    let mut acc = indices[0].cells[i];
                    for g in &indices[1..] {
                        acc.merge_in(&g.cells[i]);
                    }
                    acc
                })
                .collect::<Vec<Aggregate>>()
        });
        let mut cells = Vec::with_capacity(num_cells);
        for chunk in chunks {
            cells.extend(chunk);
        }
        let mut total = first.total;
        let mut outside = first.outside;
        for g in &indices[1..] {
            total.merge_in(&g.total);
            outside += g.outside;
        }
        Some(GridIndex {
            spec: first.spec,
            cells,
            total,
            outside,
        })
    }

    /// Reassembles a grid index from its spec and per-cell aggregates —
    /// the decode path of the wire format (Alg. 1 ships `g_i` from silo to
    /// provider). The total and the out-of-bounds count are recomputed /
    /// supplied by the caller.
    ///
    /// # Panics
    /// Panics when `cells.len()` disagrees with the spec.
    pub fn from_parts(spec: GridSpec, cells: Vec<Aggregate>, outside: u64) -> Self {
        assert_eq!(
            cells.len(),
            spec.num_cells(),
            "cell vector length must match the grid spec"
        );
        let total = cells.iter().copied().sum();
        Self {
            spec,
            cells,
            total,
            outside,
        }
    }

    /// The shared grid geometry.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The per-cell aggregates in row-major order (the wire payload).
    pub fn cells(&self) -> &[Aggregate] {
        &self.cells
    }

    /// Aggregate of one cell.
    #[inline]
    pub fn cell(&self, id: CellId) -> &Aggregate {
        &self.cells[id as usize]
    }

    /// Aggregate over an arbitrary set of cells.
    pub fn aggregate_cells(&self, ids: impl IntoIterator<Item = CellId>) -> Aggregate {
        ids.into_iter()
            .fold(Aggregate::ZERO, |acc, id| acc.merge(self.cell(id)))
    }

    /// Aggregate over all cells intersecting `range` — the naive
    /// (non-cumulative) computation of `sum₀`/`sum_k` in Algs. 2–3.
    pub fn aggregate_intersecting(&self, range: &Range) -> Aggregate {
        self.aggregate_cells(self.spec.cells_intersecting(range))
    }

    /// Grand total over all cells.
    pub fn total(&self) -> Aggregate {
        self.total
    }

    /// Number of objects that fell outside the grid bounds during build.
    pub fn outside_count(&self) -> u64 {
        self.outside
    }
}

impl IndexMemory for GridIndex {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cells.capacity() * std::mem::size_of::<Aggregate>()
    }
}

/// The 2-D cumulative array of the Sec. 4.2.1 remark.
///
/// `cum[iy][ix]` stores the aggregate of all cells `(0,0) .. (ix,iy)`
/// inclusive; by inclusion–exclusion any axis-aligned rectangle of cells is
/// answered in O(1), which drops the provider-side estimation cost of
/// Alg. 2 from O(|g₀|) to O(1) for rectangular ranges (and to
/// O(√|g₀|) per-row spans for circular ones).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixGrid {
    spec: GridSpec,
    /// (nx+1) × (ny+1) cumulative sums with a zero guard row/column.
    cum: Vec<Aggregate>,
}

impl PrefixGrid {
    /// Precomputes the cumulative array from a grid index. O(|g|).
    pub fn build(grid: &GridIndex) -> Self {
        let spec = grid.spec;
        let (nx, ny) = (spec.nx as usize, spec.ny as usize);
        let w = nx + 1;
        let mut cum = vec![Aggregate::ZERO; w * (ny + 1)];
        for iy in 0..ny {
            for ix in 0..nx {
                // cum[iy+1][ix+1] = cell + left + above − diag
                let cell = grid.cell(spec.cell_id(ix as u32, iy as u32));
                let left = cum[(iy + 1) * w + ix];
                let above = cum[iy * w + ix + 1];
                let diag = cum[iy * w + ix];
                cum[(iy + 1) * w + ix + 1] = cell.merge(&left).merge(&above).sub(&diag);
            }
        }
        Self { spec, cum }
    }

    /// The underlying grid geometry.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Aggregate over the inclusive cell rectangle
    /// `(ix0..=ix1) × (iy0..=iy1)` in O(1).
    pub fn rect_sum(&self, ix0: u32, iy0: u32, ix1: u32, iy1: u32) -> Aggregate {
        debug_assert!(ix0 <= ix1 && iy0 <= iy1);
        debug_assert!(ix1 < self.spec.nx && iy1 < self.spec.ny);
        let w = self.spec.nx as usize + 1;
        let (ix0, iy0, ix1, iy1) = (ix0 as usize, iy0 as usize, ix1 as usize, iy1 as usize);
        let d = self.cum[(iy1 + 1) * w + ix1 + 1];
        let b = self.cum[iy0 * w + ix1 + 1];
        let c = self.cum[(iy1 + 1) * w + ix0];
        let a = self.cum[iy0 * w + ix0];
        d.sub(&b).sub(&c).merge(&a)
    }

    /// Aggregate over all cells intersecting `range`, using per-row
    /// contiguous spans + O(1) row sums: O(√|g₀|) for circles, O(1) for
    /// rectangles (single inclusion–exclusion).
    pub fn aggregate_intersecting(&self, range: &Range) -> Aggregate {
        let spec = &self.spec;
        let Some((ix0, iy0, ix1, iy1)) = spec.cell_span(&range.bounding_rect()) else {
            return Aggregate::ZERO;
        };
        match range {
            Range::Rect(_) => self.rect_sum(ix0, iy0, ix1, iy1),
            Range::Circle(c) => {
                let mut acc = Aggregate::ZERO;
                for iy in iy0..=iy1 {
                    // Vertical offset from the circle center to this row of
                    // cells; the reachable half-width is √(r² − dy²).
                    let y0 = spec.bounds.min.y + iy as f64 * spec.cell_len;
                    let y1 = y0 + spec.cell_len;
                    let dy = (y0 - c.center.y).max(0.0).max(c.center.y - y1);
                    let rr = c.radius * c.radius - dy * dy;
                    if rr < 0.0 {
                        continue;
                    }
                    let w = rr.sqrt();
                    let lo_f = ((c.center.x - w - spec.bounds.min.x) / spec.cell_len).floor();
                    let hi_f = ((c.center.x + w - spec.bounds.min.x) / spec.cell_len).floor();
                    // The reachable columns may fall entirely outside the
                    // span (e.g. the circle pokes past the grid's left
                    // edge at this row); compare before casting so a
                    // negative column is never clamped into the grid.
                    if hi_f < ix0 as f64 || lo_f > ix1 as f64 {
                        continue;
                    }
                    let lo = lo_f.max(ix0 as f64) as u32;
                    let hi = hi_f.min(ix1 as f64) as u32;
                    acc.merge_in(&self.rect_sum(lo, iy, hi, iy));
                }
                acc
            }
        }
    }
}

impl IndexMemory for PrefixGrid {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.cum.capacity() * std::mem::size_of::<Aggregate>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;

    fn spec10() -> GridSpec {
        GridSpec::new(Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)), 2.5)
    }

    /// The 18 objects of the paper's Example 1 (both silos).
    fn example1_objects() -> (Vec<SpatialObject>, Vec<SpatialObject>) {
        // Silo 1: 10 blue objects; silo 2: 8 red objects. The exact layout
        // in Fig. 1c is reproduced coarsely — what matters for the tests is
        // cell-level arithmetic, validated against hand-computed sums.
        let s1 = vec![
            SpatialObject::at(1.0, 9.0, 4.0),
            SpatialObject::at(4.0, 9.0, 0.0),
            SpatialObject::at(1.0, 6.0, 1.0),
            SpatialObject::at(4.0, 6.0, 1.0),
            SpatialObject::at(6.0, 6.0, 2.0),
            SpatialObject::at(1.0, 4.0, 4.0),
            SpatialObject::at(4.0, 4.0, 0.0),
            SpatialObject::at(6.0, 4.0, 0.0),
            SpatialObject::at(8.0, 2.0, 5.0),
            SpatialObject::at(9.0, 1.0, 3.0),
        ];
        let s2 = vec![
            SpatialObject::at(2.0, 2.0, 7.0),
            SpatialObject::at(3.0, 6.0, 1.0),
            SpatialObject::at(4.0, 7.0, 1.0),
            SpatialObject::at(5.0, 5.5, 2.0),
            SpatialObject::at(2.0, 4.0, 1.0),
            SpatialObject::at(8.0, 8.0, 2.0),
            SpatialObject::at(9.0, 3.0, 1.0),
            SpatialObject::at(7.0, 9.0, 6.0),
        ];
        (s1, s2)
    }

    #[test]
    fn spec_dimensions() {
        let s = spec10();
        assert_eq!(s.nx(), 4);
        assert_eq!(s.ny(), 4);
        assert_eq!(s.num_cells(), 16);
        assert_eq!(s.cell_len(), 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn spec_rejects_zero_cell_len() {
        GridSpec::new(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn cell_id_round_trips() {
        let s = spec10();
        for iy in 0..s.ny() {
            for ix in 0..s.nx() {
                let id = s.cell_id(ix, iy);
                assert_eq!(s.cell_coords(id), (ix, iy));
            }
        }
    }

    #[test]
    fn cell_of_maps_points_to_their_square() {
        let s = spec10();
        assert_eq!(s.cell_of(&Point::new(0.0, 0.0)), Some(0));
        assert_eq!(s.cell_of(&Point::new(2.0, 2.0)), Some(0));
        assert_eq!(s.cell_of(&Point::new(2.5, 0.0)), Some(1));
        // Exactly on the top-right boundary clamps into the last cell.
        assert_eq!(s.cell_of(&Point::new(10.0, 10.0)), Some(15));
        // Far outside is rejected.
        assert_eq!(s.cell_of(&Point::new(100.0, 0.0)), None);
    }

    #[test]
    fn cell_rect_tiles_the_bounds() {
        let s = spec10();
        let r = s.cell_rect(1, 2);
        assert_eq!(r, Rect::new(Point::new(2.5, 5.0), Point::new(5.0, 7.5)));
    }

    #[test]
    fn example1_grid_counts_and_sums() {
        // Example 2 of the paper: grid length 2.5 over [0,10]², silo 2 has
        // one object at (2,2) with measure 7 in the bottom-left cell.
        let (s1, s2) = example1_objects();
        let g1 = GridIndex::build(spec10(), &s1);
        let g2 = GridIndex::build(spec10(), &s2);
        assert_eq!(g1.cell(0).count, 0.0);
        assert_eq!(g2.cell(0).count, 1.0);
        assert_eq!(g2.cell(0).sum, 7.0);

        let g0 = GridIndex::merge([&g1, &g2]).unwrap();
        assert_eq!(g0.cell(0).count, 1.0);
        assert_eq!(g0.cell(0).sum, 7.0);
        assert_eq!(g0.total().count, 18.0);
        assert_eq!(g0.outside_count(), 0);
    }

    #[test]
    fn merge_requires_a_nonempty_list() {
        assert!(GridIndex::merge([]).is_none());
    }

    #[test]
    #[should_panic(expected = "different specs")]
    fn merge_rejects_mismatched_specs() {
        let a = GridIndex::empty(spec10());
        let b = GridIndex::empty(GridSpec::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            5.0,
        ));
        GridIndex::merge([&a, &b]);
    }

    #[test]
    fn cells_intersecting_circle_matches_example3() {
        // Example 3: the circle at (4,6) radius 3 intersects the 3×3 block
        // of cells in the top-left region (columns 0–2, rows 1–3).
        let s = spec10();
        let q = Range::circle(Point::new(4.0, 6.0), 3.0);
        let cells = s.cells_intersecting(&q);
        let mut coords: Vec<(u32, u32)> = cells.iter().map(|&c| s.cell_coords(c)).collect();
        coords.sort_unstable();
        let mut expected = vec![];
        for iy in 1..=3 {
            for ix in 0..=2 {
                expected.push((ix, iy));
            }
        }
        expected.sort_unstable();
        assert_eq!(coords, expected);
    }

    #[test]
    fn example3_sum0_and_sumk() {
        // Example 3 computes sum₀ = 21 and sum_k = 11 for COUNT over the
        // 3×3 intersecting block. Our coarse Fig. 1c reproduction has the
        // same cell totals for silo 2; verify the mechanism end-to-end.
        let (s1, s2) = example1_objects();
        let g1 = GridIndex::build(spec10(), &s1);
        let g2 = GridIndex::build(spec10(), &s2);
        let g0 = GridIndex::merge([&g1, &g2]).unwrap();
        let q = Range::circle(Point::new(4.0, 6.0), 3.0);
        let sum_k = g2.aggregate_intersecting(&q);
        let sum_0 = g0.aggregate_intersecting(&q);
        // Silo 2 has 5 objects in the 3×3 block; silo 1 has 8 more.
        assert_eq!(sum_k.count, 5.0);
        assert_eq!(sum_0.count, 13.0);
    }

    #[test]
    fn classification_partitions_intersections() {
        let s = spec10();
        let q = Range::circle(Point::new(5.0, 5.0), 4.0);
        let cls = s.classify(&q);
        let all = s.cells_intersecting(&q);
        assert_eq!(cls.len(), all.len());
        for id in cls.covered.iter() {
            assert!(q.contains_rect(&s.cell_rect_of(*id)));
        }
        for id in cls.boundary.iter() {
            let r = s.cell_rect_of(*id);
            assert!(q.intersects_rect(&r) && !q.contains_rect(&r));
        }
    }

    #[test]
    fn classification_of_far_range_is_empty() {
        let s = spec10();
        let q = Range::circle(Point::new(100.0, 100.0), 1.0);
        assert!(s.classify(&q).is_empty());
        assert!(s.cells_intersecting(&q).is_empty());
    }

    #[test]
    fn prefix_grid_matches_naive_rect_sums() {
        let (s1, s2) = example1_objects();
        let mut all = s1;
        all.extend(s2);
        let g = GridIndex::build(spec10(), &all);
        let p = PrefixGrid::build(&g);
        for iy0 in 0..4u32 {
            for ix0 in 0..4u32 {
                for iy1 in iy0..4u32 {
                    for ix1 in ix0..4u32 {
                        let fast = p.rect_sum(ix0, iy0, ix1, iy1);
                        let mut slow = Aggregate::ZERO;
                        for iy in iy0..=iy1 {
                            for ix in ix0..=ix1 {
                                slow.merge_in(g.cell(g.spec().cell_id(ix, iy)));
                            }
                        }
                        assert!(
                            (fast.count - slow.count).abs() < 1e-9
                                && (fast.sum - slow.sum).abs() < 1e-9,
                            "mismatch at ({ix0},{iy0})..({ix1},{iy1})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prefix_grid_intersecting_matches_naive_for_circles() {
        let (s1, s2) = example1_objects();
        let mut all = s1;
        all.extend(s2);
        let g = GridIndex::build(spec10(), &all);
        let p = PrefixGrid::build(&g);
        for (cx, cy, r) in [
            (4.0, 6.0, 3.0),
            (5.0, 5.0, 1.0),
            (0.0, 0.0, 2.0),
            (10.0, 10.0, 4.0),
            (5.0, 5.0, 20.0),
            (-3.0, 5.0, 2.0),
        ] {
            let q = Range::circle(Point::new(cx, cy), r);
            let fast = p.aggregate_intersecting(&q);
            let slow = g.aggregate_intersecting(&q);
            assert!(
                (fast.count - slow.count).abs() < 1e-9,
                "circle ({cx},{cy},{r}): fast {} vs slow {}",
                fast.count,
                slow.count
            );
        }
    }

    #[test]
    fn prefix_grid_intersecting_matches_naive_for_rects() {
        let (s1, s2) = example1_objects();
        let mut all = s1;
        all.extend(s2);
        let g = GridIndex::build(spec10(), &all);
        let p = PrefixGrid::build(&g);
        let q = Range::rect(Point::new(1.0, 1.0), Point::new(6.0, 8.0));
        assert_eq!(
            p.aggregate_intersecting(&q).count,
            g.aggregate_intersecting(&q).count
        );
    }

    #[test]
    fn out_of_bounds_objects_are_counted() {
        let s = spec10();
        let g = GridIndex::build(
            s,
            &[
                SpatialObject::at(5.0, 5.0, 1.0),
                SpatialObject::at(500.0, 5.0, 1.0),
            ],
        );
        assert_eq!(g.total().count, 1.0);
        assert_eq!(g.outside_count(), 1);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        // 100k objects span four build chunks; pool sizes 1 and 4 must
        // produce the same bits because chunking depends only on n.
        let mut state = 7u64;
        let objs: Vec<SpatialObject> = (0..100_000)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                SpatialObject::at(x, y, (i % 9) as f64 * 0.3)
            })
            .collect();
        let spec = spec10();
        let seq = GridIndex::build(spec, &objs);
        let par = GridIndex::build_with(spec, &objs, &WorkerPool::new(4));
        assert_eq!(seq.outside_count(), par.outside_count());
        assert_eq!(seq.total().sum.to_bits(), par.total().sum.to_bits());
        for (a, b) in seq.cells().iter().zip(par.cells()) {
            assert_eq!(a.count.to_bits(), b.count.to_bits());
            assert_eq!(a.sum.to_bits(), b.sum.to_bits());
            assert_eq!(a.sum_sqr.to_bits(), b.sum_sqr.to_bits());
        }
    }

    #[test]
    fn parallel_merge_matches_sequential_bitwise() {
        let (s1, s2) = example1_objects();
        let g1 = GridIndex::build(spec10(), &s1);
        let g2 = GridIndex::build(spec10(), &s2);
        let seq = GridIndex::merge([&g1, &g2]).unwrap();
        let par = GridIndex::merge_with(&[&g1, &g2], &WorkerPool::new(4)).unwrap();
        assert_eq!(seq, par);
        for (a, b) in seq.cells().iter().zip(par.cells()) {
            assert_eq!(a.sum.to_bits(), b.sum.to_bits());
        }
        assert_eq!(seq.total().sum.to_bits(), par.total().sum.to_bits());
    }

    #[test]
    fn memory_accounting_is_positive_and_monotone() {
        let small = GridIndex::empty(GridSpec::new(
            Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            5.0,
        ));
        let big = GridIndex::empty(spec10());
        assert!(small.memory_bytes() > 0);
        assert!(big.memory_bytes() > small.memory_bytes());
        let p = PrefixGrid::build(&big);
        assert!(p.memory_bytes() > big.memory_bytes());
    }

    #[test]
    fn circle_range_through_example_matches_bruteforce_cells() {
        // Randomized-ish sweep: many circle positions, prefix vs naive.
        let (s1, s2) = example1_objects();
        let mut all = s1;
        all.extend(s2);
        let g = GridIndex::build(spec10(), &all);
        let p = PrefixGrid::build(&g);
        for i in 0..40 {
            let cx = (i as f64 * 0.37) % 12.0 - 1.0;
            let cy = (i as f64 * 0.73) % 12.0 - 1.0;
            let r = 0.5 + (i as f64 * 0.11) % 4.0;
            let q = Range::circle(Point::new(cx, cy), r);
            let fast = p.aggregate_intersecting(&q);
            let slow = g.aggregate_intersecting(&q);
            assert!(
                (fast.count - slow.count).abs() < 1e-9,
                "mismatch at {q}: {} vs {}",
                fast.count,
                slow.count
            );
        }
    }
}
