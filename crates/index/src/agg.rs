//! The aggregate monoid carried by every index in `fedra`.
//!
//! The paper's FRA query supports COUNT and SUM natively and derives AVG
//! and STDEV from COUNT, SUM and the user-defined SUM_SQR (Sec. 7). Rather
//! than running three rounds of local queries as the paper describes, every
//! `fedra` index node carries the full `(count, sum, sum_sqr)` triple — the
//! triple is a commutative monoid, so one traversal answers all five
//! functions at once with the same accuracy guarantees (SUM_SQR "is
//! processed in the same way as SUM").

use serde::{Deserialize, Serialize};

use fedra_geo::SpatialObject;

/// The aggregation function `F` of an FRA query (Definition 2 + Sec. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// Number of objects within the range.
    Count,
    /// Sum of measure attributes within the range.
    Sum,
    /// Sum of squared measure attributes (substrate for STDEV, Sec. 7).
    SumSqr,
    /// Average measure: SUM / COUNT (Sec. 7).
    Avg,
    /// Standard deviation: √(SUM_SQR/COUNT − AVG²) (Sec. 7).
    Stdev,
}

impl AggFunc {
    /// All supported functions, handy for exhaustive tests and sweeps.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::SumSqr,
        AggFunc::Avg,
        AggFunc::Stdev,
    ];

    /// Whether the function is a *primitive* (directly estimable) monoid
    /// component, as opposed to AVG/STDEV which are derived ratios.
    pub fn is_primitive(&self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum | AggFunc::SumSqr)
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::SumSqr => "SUM_SQR",
            AggFunc::Avg => "AVG",
            AggFunc::Stdev => "STDEV",
        };
        f.pad(s)
    }
}

/// A partial aggregation result: the `(COUNT, SUM, SUM_SQR)` triple.
///
/// Forms a commutative monoid under [`Aggregate::merge`] with
/// [`Aggregate::ZERO`] as identity. Every grid cell, R-tree node,
/// histogram bucket and wire message carries one of these.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of objects.
    pub count: f64,
    /// Sum of measures.
    pub sum: f64,
    /// Sum of squared measures.
    pub sum_sqr: f64,
}

impl Aggregate {
    /// The empty aggregate (monoid identity).
    pub const ZERO: Aggregate = Aggregate {
        count: 0.0,
        sum: 0.0,
        sum_sqr: 0.0,
    };

    /// Aggregate of a single object.
    #[inline]
    pub fn of(object: &SpatialObject) -> Self {
        let m = object.measure;
        Aggregate {
            count: 1.0,
            sum: m,
            sum_sqr: m * m,
        }
    }

    /// Aggregate of a slice of objects.
    pub fn of_all(objects: &[SpatialObject]) -> Self {
        objects
            .iter()
            .fold(Aggregate::ZERO, |acc, o| acc.merge(&Aggregate::of(o)))
    }

    /// Monoid operation: component-wise addition.
    #[inline]
    #[must_use]
    pub fn merge(&self, other: &Aggregate) -> Aggregate {
        Aggregate {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            sum_sqr: self.sum_sqr + other.sum_sqr,
        }
    }

    /// In-place merge.
    #[inline]
    pub fn merge_in(&mut self, other: &Aggregate) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sqr += other.sum_sqr;
    }

    /// Component-wise subtraction (inclusion–exclusion over prefix sums).
    #[inline]
    #[must_use]
    pub fn sub(&self, other: &Aggregate) -> Aggregate {
        Aggregate {
            count: self.count - other.count,
            sum: self.sum - other.sum,
            sum_sqr: self.sum_sqr - other.sum_sqr,
        }
    }

    /// Scales every component by `factor` (used by the sampling
    /// estimators: `res' = res_l × 2^l` in Alg. 6, `sum₀ × res_k / sum_k`
    /// in Alg. 2, per-grid re-weighting in Alg. 3).
    #[inline]
    #[must_use]
    pub fn scale(&self, factor: f64) -> Aggregate {
        Aggregate {
            count: self.count * factor,
            sum: self.sum * factor,
            sum_sqr: self.sum_sqr * factor,
        }
    }

    /// Whether the aggregate is exactly empty.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.count == 0.0 && self.sum == 0.0 && self.sum_sqr == 0.0
    }

    /// Value of a *primitive* aggregation function.
    ///
    /// # Panics
    /// Panics for derived functions (AVG, STDEV); use [`Aggregate::value`]
    /// for those.
    #[inline]
    pub fn primitive(&self, f: AggFunc) -> f64 {
        match f {
            AggFunc::Count => self.count,
            AggFunc::Sum => self.sum,
            AggFunc::SumSqr => self.sum_sqr,
            _ => panic!("{f} is a derived aggregation function; use Aggregate::value"),
        }
    }

    /// Value of any aggregation function over this aggregate.
    ///
    /// AVG and STDEV of an empty aggregate are defined as 0 — the same
    /// convention SQL's `COALESCE(AVG(..), 0)` would give a service
    /// provider, and the convention the estimators rely on.
    pub fn value(&self, f: AggFunc) -> f64 {
        match f {
            AggFunc::Count => self.count,
            AggFunc::Sum => self.sum,
            AggFunc::SumSqr => self.sum_sqr,
            AggFunc::Avg => {
                if self.count <= 0.0 {
                    0.0
                } else {
                    self.sum / self.count
                }
            }
            AggFunc::Stdev => {
                if self.count <= 0.0 {
                    0.0
                } else {
                    let avg = self.sum / self.count;
                    (self.sum_sqr / self.count - avg * avg).max(0.0).sqrt()
                }
            }
        }
    }
}

impl std::ops::Add for Aggregate {
    type Output = Aggregate;
    fn add(self, rhs: Aggregate) -> Aggregate {
        self.merge(&rhs)
    }
}

impl std::ops::AddAssign for Aggregate {
    fn add_assign(&mut self, rhs: Aggregate) {
        self.merge_in(&rhs);
    }
}

impl std::iter::Sum for Aggregate {
    fn sum<I: Iterator<Item = Aggregate>>(iter: I) -> Aggregate {
        iter.fold(Aggregate::ZERO, |a, b| a.merge(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::SpatialObject;

    fn obj(m: f64) -> SpatialObject {
        SpatialObject::at(0.0, 0.0, m)
    }

    #[test]
    fn zero_is_identity() {
        let a = Aggregate::of(&obj(3.0));
        assert_eq!(a.merge(&Aggregate::ZERO), a);
        assert_eq!(Aggregate::ZERO.merge(&a), a);
        assert!(Aggregate::ZERO.is_zero());
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = Aggregate::of(&obj(1.0));
        let b = Aggregate::of(&obj(2.0));
        let c = Aggregate::of(&obj(3.0));
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn of_all_matches_fold() {
        let objs = [obj(1.0), obj(2.0), obj(3.0)];
        let a = Aggregate::of_all(&objs);
        assert_eq!(a.count, 3.0);
        assert_eq!(a.sum, 6.0);
        assert_eq!(a.sum_sqr, 14.0);
    }

    #[test]
    fn sub_inverts_merge() {
        let a = Aggregate::of_all(&[obj(1.0), obj(2.0)]);
        let b = Aggregate::of(&obj(2.0));
        let d = a.sub(&b);
        assert_eq!(d.count, 1.0);
        assert_eq!(d.sum, 1.0);
        assert_eq!(d.sum_sqr, 1.0);
    }

    #[test]
    fn scale_multiplies_components() {
        let a = Aggregate::of_all(&[obj(1.0), obj(3.0)]).scale(2.0);
        assert_eq!(a.count, 4.0);
        assert_eq!(a.sum, 8.0);
        assert_eq!(a.sum_sqr, 20.0);
    }

    #[test]
    fn derived_values() {
        // measures 1, 2, 3: avg = 2, var = (14/3 - 4) = 2/3
        let a = Aggregate::of_all(&[obj(1.0), obj(2.0), obj(3.0)]);
        assert_eq!(a.value(AggFunc::Count), 3.0);
        assert_eq!(a.value(AggFunc::Sum), 6.0);
        assert_eq!(a.value(AggFunc::SumSqr), 14.0);
        assert_eq!(a.value(AggFunc::Avg), 2.0);
        assert!((a.value(AggFunc::Stdev) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn derived_values_of_empty_aggregate_are_zero() {
        assert_eq!(Aggregate::ZERO.value(AggFunc::Avg), 0.0);
        assert_eq!(Aggregate::ZERO.value(AggFunc::Stdev), 0.0);
    }

    #[test]
    fn stdev_clamps_negative_variance_from_rounding() {
        // A single object: variance must be exactly 0 even with rounding.
        let a = Aggregate::of(&obj(0.1));
        assert_eq!(a.value(AggFunc::Stdev), 0.0);
    }

    #[test]
    #[should_panic(expected = "derived aggregation function")]
    fn primitive_rejects_avg() {
        Aggregate::ZERO.primitive(AggFunc::Avg);
    }

    #[test]
    fn operator_sugar() {
        let a = Aggregate::of(&obj(1.0));
        let b = Aggregate::of(&obj(2.0));
        let mut c = a;
        c += b;
        assert_eq!(a + b, c);
        let s: Aggregate = [a, b].into_iter().sum();
        assert_eq!(s, c);
    }

    #[test]
    fn all_funcs_listed_once() {
        assert_eq!(AggFunc::ALL.len(), 5);
        assert!(AggFunc::Count.is_primitive());
        assert!(AggFunc::Sum.is_primitive());
        assert!(AggFunc::SumSqr.is_primitive());
        assert!(!AggFunc::Avg.is_primitive());
        assert!(!AggFunc::Stdev.is_primitive());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = AggFunc::ALL.iter().map(|f| f.to_string()).collect();
        assert_eq!(names, ["COUNT", "SUM", "SUM_SQR", "AVG", "STDEV"]);
    }
}
