//! Spatial objects: `(location, measure)` pairs (Definition 1).

use serde::{Deserialize, Serialize};

use crate::Point;

/// The measure attribute of a spatial object.
///
/// Application-specific per the paper: taxi speed, carried passengers, etc.
/// `fedra` keeps it a plain `f64`; SUM/AVG/STDEV aggregate over it while
/// COUNT ignores it.
pub type Measure = f64;

/// A spatial object `o = (l_o, a_o)` — Definition 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialObject {
    /// Location `l_o` in the plane.
    pub location: Point,
    /// Measure attribute `a_o`.
    pub measure: Measure,
}

impl SpatialObject {
    /// Creates a spatial object.
    #[inline]
    pub const fn new(location: Point, measure: Measure) -> Self {
        Self { location, measure }
    }

    /// Creates an object at `(x, y)` with the given measure.
    #[inline]
    pub const fn at(x: f64, y: f64, measure: Measure) -> Self {
        Self {
            location: Point::new(x, y),
            measure,
        }
    }
}

impl From<(Point, Measure)> for SpatialObject {
    fn from((location, measure): (Point, Measure)) -> Self {
        Self { location, measure }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        let a = SpatialObject::new(Point::new(2.0, 2.0), 7.0);
        let b = SpatialObject::at(2.0, 2.0, 7.0);
        let c: SpatialObject = (Point::new(2.0, 2.0), 7.0).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.measure, 7.0);
    }
}
