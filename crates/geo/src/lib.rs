//! Planar geometry substrate for the `fedra` spatial data federation.
//!
//! The paper defines spatial objects in the two-dimensional Euclidean plane
//! and queries over circular or rectangular ranges. This crate provides the
//! minimal, well-tested geometric vocabulary used by every other crate:
//!
//! * [`Point`] — a location in the plane (kilometres after projection);
//! * [`Rect`] — an axis-aligned rectangle (used for query ranges, grid
//!   cells and R-tree bounding boxes);
//! * [`Circle`] — a circular query range;
//! * [`Range`] — either of the two query-range shapes with a uniform API;
//! * [`SpatialObject`] — `(location, measure)` pairs as in Definition 1;
//! * [`GeoPoint`] / [`Projection`] — lat/lon support via an equirectangular
//!   projection so real-world datasets (the paper uses Beijing GPS records)
//!   can be mapped onto the plane with kilometre units.
//!
//! All geometry is `f64`; the crate is `#![forbid(unsafe_code)]` and has no
//! dependencies beyond `serde` for wire/ persistence formats.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod area;
mod circle;
mod object;
mod point;
mod projection;
mod range;
mod rect;

pub use area::{circle_rect_intersection_area, intersection_area};
pub use circle::Circle;
pub use object::{Measure, SpatialObject};
pub use point::Point;
pub use projection::{GeoPoint, Projection};
pub use range::{Range, RectRelation};
pub use rect::Rect;

/// Numeric tolerance used by approximate geometric comparisons in tests.
pub const EPSILON: f64 = 1e-9;
