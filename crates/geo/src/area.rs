//! Intersection areas between query ranges and rectangles.
//!
//! The OPTA histogram baseline and the Non-IID estimator's zero-data
//! fallback both need the *fraction of a grid cell covered by the query
//! range* under a uniform-within-cell assumption. For rectangular ranges
//! the intersection area is exact and trivial; for circular ranges we
//! evaluate the exact closed form by splitting the x-interval at the
//! abscissae where the top/bottom boundary switches between the rectangle
//! edge and the circle arc, then integrating each piece analytically.

use crate::{Circle, Range, Rect};

/// Area of the intersection of `range` and `rect`.
pub fn intersection_area(range: &Range, rect: &Rect) -> f64 {
    match range {
        Range::Rect(r) => r.intersection(rect).area(),
        Range::Circle(c) => circle_rect_intersection_area(c, rect),
    }
}

/// Exact area of the intersection of a circle and an axis-aligned rectangle.
///
/// Runs in O(1): the integration domain is split at no more than seven
/// breakpoints and each piece has a closed-form antiderivative
/// (`∫√(r²−x²) dx = (x√(r²−x²) + r²·asin(x/r)) / 2`).
pub fn circle_rect_intersection_area(circle: &Circle, rect: &Rect) -> f64 {
    let r = circle.radius;
    if rect.is_empty() || r == 0.0 || !circle.intersects_rect(rect) {
        return 0.0;
    }
    if circle.contains_rect(rect) {
        return rect.area();
    }

    // Translate so the circle sits at the origin; clip x to the disk.
    let x0 = (rect.min.x - circle.center.x).max(-r);
    let x1 = (rect.max.x - circle.center.x).min(r);
    if x0 >= x1 {
        return 0.0;
    }
    let y_lo = rect.min.y - circle.center.y;
    let y_hi = rect.max.y - circle.center.y;

    // Antiderivative of the half-chord h(x) = √(r² − x²).
    let antideriv = |x: f64| -> f64 {
        let c = (x / r).clamp(-1.0, 1.0);
        0.5 * (x * (r * r - x * x).max(0.0).sqrt() + r * r * c.asin())
    };
    let half_chord = |x: f64| (r * r - x * x).max(0.0).sqrt();

    // Breakpoints: interval ends, the apex (h is monotonic on each side of
    // 0), and the abscissae where the arc crosses the horizontal edges.
    let mut cuts = [x0, x1, 0.0, f64::NAN, f64::NAN, f64::NAN, f64::NAN];
    let mut n_cuts = 3;
    for &edge in &[y_hi, y_lo] {
        if edge.abs() < r {
            let x = (r * r - edge * edge).sqrt();
            cuts[n_cuts] = x;
            cuts[n_cuts + 1] = -x;
            n_cuts += 2;
        }
    }
    let cuts = &mut cuts[..n_cuts];
    // `total_cmp` is a total order, so the sort cannot fall back to input
    // order on a NaN (and drops the panic path `partial_cmp` needed).
    cuts.sort_by(f64::total_cmp);

    let mut area = 0.0;
    for w in cuts.windows(2) {
        let (a, b) = (w[0].max(x0), w[1].min(x1));
        if b <= a {
            continue;
        }
        let mid = 0.5 * (a + b);
        let h_mid = half_chord(mid);
        // On (a, b) the active top/bottom boundary branch is fixed.
        let top_flat = y_hi < h_mid;
        let bot_flat = y_lo > -h_mid;
        let width_mid = if top_flat { y_hi } else { h_mid } - if bot_flat { y_lo } else { -h_mid };
        if width_mid <= 0.0 {
            continue;
        }
        let arc = antideriv(b) - antideriv(a);
        let top = if top_flat { y_hi * (b - a) } else { arc };
        let bot = if bot_flat { y_lo * (b - a) } else { -arc };
        area += top - bot;
    }
    area.clamp(0.0, rect.area().min(circle.area()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    const PI: f64 = std::f64::consts::PI;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn disjoint_shapes_have_zero_area() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let r = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert_eq!(circle_rect_intersection_area(&c, &r), 0.0);
    }

    #[test]
    fn contained_rect_returns_rect_area() {
        let c = Circle::new(Point::new(0.0, 0.0), 10.0);
        let r = Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        assert_eq!(circle_rect_intersection_area(&c, &r), 4.0);
    }

    #[test]
    fn rect_containing_circle_returns_disk_area() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let r = Rect::new(Point::new(-5.0, -5.0), Point::new(5.0, 5.0));
        let a = circle_rect_intersection_area(&c, &r);
        assert!(close(a, PI, 1e-12), "got {a}, want {PI}");
    }

    #[test]
    fn half_disk() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        let r = Rect::new(Point::new(0.0, -5.0), Point::new(5.0, 5.0));
        let a = circle_rect_intersection_area(&c, &r);
        assert!(close(a, 2.0 * PI, 1e-12), "got {a}");
    }

    #[test]
    fn quarter_disk() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0));
        let a = circle_rect_intersection_area(&c, &r);
        assert!(close(a, PI / 4.0, 1e-12), "got {a}");
    }

    #[test]
    fn circular_segment_matches_closed_form() {
        // Disk of radius 1 cut by the vertical line x = 0.5: the area right
        // of the line is acos(d) − d·√(1−d²) for unit radius.
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let r = Rect::new(Point::new(0.5, -2.0), Point::new(2.0, 2.0));
        let expected = (0.5f64).acos() - 0.5 * (1.0f64 - 0.25).sqrt();
        let a = circle_rect_intersection_area(&c, &r);
        assert!(close(a, expected, 1e-12), "got {a}, want {expected}");
    }

    #[test]
    fn horizontal_segment_matches_closed_form() {
        // Same segment, cut by the horizontal line y = 0.5.
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let r = Rect::new(Point::new(-2.0, 0.5), Point::new(2.0, 2.0));
        let expected = (0.5f64).acos() - 0.5 * (1.0f64 - 0.25).sqrt();
        let a = circle_rect_intersection_area(&c, &r);
        assert!(close(a, expected, 1e-12), "got {a}, want {expected}");
    }

    #[test]
    fn off_center_translation_invariance() {
        let c0 = Circle::new(Point::new(0.0, 0.0), 1.3);
        let r0 = Rect::new(Point::new(-0.5, -1.0), Point::new(1.5, 0.8));
        let c1 = Circle::new(Point::new(100.0, -7.0), 1.3);
        let r1 = Rect::new(Point::new(99.5, -8.0), Point::new(101.5, -6.2));
        let a0 = circle_rect_intersection_area(&c0, &r0);
        let a1 = circle_rect_intersection_area(&c1, &r1);
        assert!(close(a0, a1, 1e-12));
    }

    #[test]
    fn rect_range_intersection_is_exact() {
        let q = Range::rect(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let r = Rect::new(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        assert_eq!(intersection_area(&q, &r), 4.0);
    }

    #[test]
    fn circle_range_dispatches() {
        let q = Range::circle(Point::new(0.0, 0.0), 1.0);
        let r = Rect::new(Point::new(-5.0, -5.0), Point::new(5.0, 5.0));
        assert!(close(intersection_area(&q, &r), PI, 1e-12));
    }

    #[test]
    fn zero_radius_circle_has_zero_intersection() {
        let c = Circle::new(Point::new(0.0, 0.0), 0.0);
        let r = Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        assert_eq!(circle_rect_intersection_area(&c, &r), 0.0);
    }

    #[test]
    fn lattice_agreement() {
        // Deterministic midpoint-lattice check on a generic configuration.
        let c = Circle::new(Point::new(0.3, -0.2), 1.3);
        let r = Rect::new(Point::new(-0.5, -1.0), Point::new(1.5, 0.8));
        let analytic = circle_rect_intersection_area(&c, &r);
        let n = 1000;
        let mut hits = 0u64;
        for i in 0..n {
            for j in 0..n {
                let x = r.min.x + (i as f64 + 0.5) / n as f64 * r.width();
                let y = r.min.y + (j as f64 + 0.5) / n as f64 * r.height();
                if c.contains_point(&Point::new(x, y)) {
                    hits += 1;
                }
            }
        }
        let lattice = hits as f64 / (n * n) as f64 * r.area();
        assert!(
            close(analytic, lattice, 1e-2),
            "analytic {analytic} vs lattice {lattice}"
        );
    }

    #[test]
    fn additivity_across_a_vertical_split() {
        // Areas of the two halves of a split rectangle sum to the whole.
        let c = Circle::new(Point::new(0.1, 0.2), 1.1);
        let whole = Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        let left = Rect::new(Point::new(-1.0, -1.0), Point::new(0.0, 1.0));
        let right = Rect::new(Point::new(0.0, -1.0), Point::new(1.0, 1.0));
        let aw = circle_rect_intersection_area(&c, &whole);
        let al = circle_rect_intersection_area(&c, &left);
        let ar = circle_rect_intersection_area(&c, &right);
        assert!(close(al + ar, aw, 1e-10), "{al} + {ar} != {aw}");
    }
}
