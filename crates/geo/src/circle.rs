//! Circular query ranges.

use serde::{Deserialize, Serialize};

use crate::{Point, Rect};

/// A circular range: all points within `radius` of `center` (closed disk).
///
/// The paper's running example — "how many shared bikes are there within
/// 2 kilometres of a subway station" — is a circular FRA range; the
/// experiment section sweeps the radius from 1 km to 3 km (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the disk.
    pub center: Point,
    /// Radius (same unit as the coordinates; kilometres in `fedra`).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle. Negative radii are clamped to zero.
    pub fn new(center: Point, radius: f64) -> Self {
        Self {
            center,
            radius: radius.max(0.0),
        }
    }

    /// Whether `p` lies inside or on the circle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// The tightest axis-aligned rectangle covering the circle.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::from_corners(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    /// Whether the circle and the closed rectangle share at least one point.
    #[inline]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        !rect.is_empty() && rect.min_distance_sq(&self.center) <= self.radius * self.radius
    }

    /// Whether the circle fully covers the rectangle.
    ///
    /// True iff the farthest corner of the rectangle is within the radius.
    /// Every circle covers the empty rectangle.
    #[inline]
    pub fn contains_rect(&self, rect: &Rect) -> bool {
        rect.is_empty() || rect.max_distance_sq(&self.center) <= self.radius * self.radius
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "circle(center={}, r={})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_point_is_closed() {
        // The paper's Example 1: circle centered at (4, 6) with radius 3.
        let c = Circle::new(Point::new(4.0, 6.0), 3.0);
        assert!(c.contains_point(&Point::new(4.0, 6.0)));
        assert!(c.contains_point(&Point::new(7.0, 6.0))); // on the boundary
        assert!(c.contains_point(&Point::new(5.0, 7.0)));
        assert!(!c.contains_point(&Point::new(7.1, 6.0)));
    }

    #[test]
    fn negative_radius_clamps_to_zero() {
        let c = Circle::new(Point::new(0.0, 0.0), -1.0);
        assert_eq!(c.radius, 0.0);
        assert!(c.contains_point(&Point::new(0.0, 0.0)));
        assert!(!c.contains_point(&Point::new(0.1, 0.0)));
    }

    #[test]
    fn bounding_rect_is_tight() {
        let c = Circle::new(Point::new(1.0, 2.0), 3.0);
        let b = c.bounding_rect();
        assert_eq!(b, Rect::new(Point::new(-2.0, -1.0), Point::new(4.0, 5.0)));
    }

    #[test]
    fn rect_intersection_cases() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        // rectangle containing the center
        assert!(c.intersects_rect(&Rect::new(Point::new(-0.5, -0.5), Point::new(0.5, 0.5))));
        // rectangle overlapping the rim
        assert!(c.intersects_rect(&Rect::new(Point::new(0.9, -0.1), Point::new(2.0, 0.1))));
        // rectangle in the bounding box corner but outside the disk
        assert!(!c.intersects_rect(&Rect::new(Point::new(0.9, 0.9), Point::new(1.0, 1.0))));
        // far away
        assert!(!c.intersects_rect(&Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0))));
        // empty rect
        assert!(!c.intersects_rect(&Rect::EMPTY));
    }

    #[test]
    fn rect_containment_cases() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        // small rect near the center: covered
        assert!(c.contains_rect(&Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0))));
        // rect with one corner outside
        assert!(!c.contains_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(1.9, 1.9))));
        // empty rect is covered by convention
        assert!(c.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn area_is_pi_r_squared() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        assert!((c.area() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }
}
