//! Equirectangular projection between geographic and planar coordinates.
//!
//! The paper's dataset covers Beijing (39.5–42.0° N, 115.5–117.2° E) with
//! query radii of 1–3 km. Over such a city-scale extent an equirectangular
//! projection anchored at the region center is accurate to well under 1 %,
//! which is far below the approximation errors the algorithms themselves
//! introduce, so it is the right tool: cheap, invertible, and unit-true
//! (outputs kilometres).

use serde::{Deserialize, Serialize};

use crate::Point;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A geographic coordinate in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a geographic coordinate.
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in kilometres.
    pub fn haversine_distance(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// An equirectangular projection anchored at a reference point.
///
/// Forward: `x = R·Δlon·cos(lat₀)`, `y = R·Δlat` (radians), yielding planar
/// kilometres; the inverse recovers degrees exactly (the projection is
/// affine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl Projection {
    /// Creates a projection anchored at `origin` (typically the centroid of
    /// the region of interest).
    pub fn new(origin: GeoPoint) -> Self {
        Self {
            origin,
            cos_lat0: origin.lat.to_radians().cos(),
        }
    }

    /// The projection anchored at the center of the paper's Beijing
    /// bounding box (39.5–42.0° N, 115.5–117.2° E).
    pub fn beijing() -> Self {
        Self::new(GeoPoint::new(40.75, 116.35))
    }

    /// Reference point of the projection.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic coordinate onto the plane (kilometres).
    pub fn project(&self, g: &GeoPoint) -> Point {
        let dlat = (g.lat - self.origin.lat).to_radians();
        let dlon = (g.lon - self.origin.lon).to_radians();
        Point::new(
            EARTH_RADIUS_KM * dlon * self.cos_lat0,
            EARTH_RADIUS_KM * dlat,
        )
    }

    /// Maps a planar point (kilometres) back to geographic degrees.
    pub fn unproject(&self, p: &Point) -> GeoPoint {
        let dlat = (p.y / EARTH_RADIUS_KM).to_degrees();
        let dlon = (p.x / (EARTH_RADIUS_KM * self.cos_lat0)).to_degrees();
        GeoPoint::new(self.origin.lat + dlat, self.origin.lon + dlon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_round_trips() {
        let proj = Projection::beijing();
        let g = GeoPoint::new(39.9042, 116.4074); // central Beijing
        let p = proj.project(&g);
        let back = proj.unproject(&p);
        assert!((back.lat - g.lat).abs() < 1e-12);
        assert!((back.lon - g.lon).abs() < 1e-12);
    }

    #[test]
    fn origin_projects_to_zero() {
        let proj = Projection::beijing();
        let p = proj.project(&proj.origin());
        assert_eq!(p, Point::new(0.0, 0.0));
    }

    #[test]
    fn projected_distance_matches_haversine_at_city_scale() {
        let proj = Projection::beijing();
        // Two points ~5 km apart near the projection origin.
        let a = GeoPoint::new(40.73, 116.33);
        let b = GeoPoint::new(40.77, 116.37);
        let planar = proj.project(&a).distance(&proj.project(&b));
        let sphere = a.haversine_distance(&b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 0.005, "relative error {rel_err} too large");
    }

    #[test]
    fn haversine_known_value() {
        // One degree of latitude is ~111.2 km.
        let a = GeoPoint::new(40.0, 116.0);
        let b = GeoPoint::new(41.0, 116.0);
        let d = a.haversine_distance(&b);
        assert!((d - 111.19).abs() < 0.1, "got {d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(40.0, 116.0);
        let b = GeoPoint::new(39.5, 117.0);
        assert!((a.haversine_distance(&b) - b.haversine_distance(&a)).abs() < 1e-12);
        assert_eq!(a.haversine_distance(&a), 0.0);
    }
}
