//! The FRA query range: a circle or a rectangle with a uniform API.

use serde::{Deserialize, Serialize};

use crate::{Circle, Point, Rect};

/// Spatial relation between a query range and a rectangle (grid cell or
/// R-tree node MBR).
///
/// Index traversals use this three-way answer for pruning:
/// * [`RectRelation::Disjoint`] — skip the subtree / cell entirely;
/// * [`RectRelation::Contained`] — take the pre-aggregated value without
///   visiting children (the aggregate R-tree fast path, and the
///   "grids covered in R" fast path of the Sec. 4.2.2 remark);
/// * [`RectRelation::Intersecting`] — descend / inspect objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RectRelation {
    /// The range and the rectangle share no point.
    Disjoint,
    /// The range fully covers the rectangle.
    Contained,
    /// The range and the rectangle overlap partially.
    Intersecting,
}

/// An FRA query range, `R` in Definition 2: "R can be either circular or
/// rectangular".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Range {
    /// A circular range.
    Circle(Circle),
    /// A rectangular range.
    Rect(Rect),
}

impl Range {
    /// Convenience constructor for a circular range.
    pub fn circle(center: Point, radius: f64) -> Self {
        Range::Circle(Circle::new(center, radius))
    }

    /// Convenience constructor for a rectangular range.
    pub fn rect(a: Point, b: Point) -> Self {
        Range::Rect(Rect::new(a, b))
    }

    /// Whether the range contains the point (closed).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        match self {
            Range::Circle(c) => c.contains_point(p),
            Range::Rect(r) => r.contains_point(p),
        }
    }

    /// The tightest axis-aligned bounding rectangle of the range.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        match self {
            Range::Circle(c) => c.bounding_rect(),
            Range::Rect(r) => *r,
        }
    }

    /// Whether the range and the rectangle share at least one point.
    #[inline]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        match self {
            Range::Circle(c) => c.intersects_rect(rect),
            Range::Rect(r) => r.intersects(rect),
        }
    }

    /// Whether the range fully covers the rectangle.
    #[inline]
    pub fn contains_rect(&self, rect: &Rect) -> bool {
        match self {
            Range::Circle(c) => c.contains_rect(rect),
            Range::Rect(r) => r.contains_rect(rect),
        }
    }

    /// Three-way relation used for index pruning.
    #[inline]
    pub fn relation(&self, rect: &Rect) -> RectRelation {
        if !self.intersects_rect(rect) {
            RectRelation::Disjoint
        } else if self.contains_rect(rect) {
            RectRelation::Contained
        } else {
            RectRelation::Intersecting
        }
    }

    /// Area of the range.
    #[inline]
    pub fn area(&self) -> f64 {
        match self {
            Range::Circle(c) => c.area(),
            Range::Rect(r) => r.area(),
        }
    }
}

impl From<Circle> for Range {
    fn from(c: Circle) -> Self {
        Range::Circle(c)
    }
}

impl From<Rect> for Range {
    fn from(r: Rect) -> Self {
        Range::Rect(r)
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Range::Circle(c) => c.fmt(f),
            Range::Rect(r) => r.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_range_delegates() {
        let q = Range::circle(Point::new(4.0, 6.0), 3.0);
        assert!(q.contains_point(&Point::new(4.0, 6.0)));
        assert!(!q.contains_point(&Point::new(9.0, 9.0)));
        assert_eq!(
            q.bounding_rect(),
            Rect::new(Point::new(1.0, 3.0), Point::new(7.0, 9.0))
        );
    }

    #[test]
    fn rect_range_delegates() {
        let q = Range::rect(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(q.contains_point(&Point::new(2.0, 2.0)));
        assert!(!q.contains_point(&Point::new(2.1, 2.0)));
        assert_eq!(
            q.bounding_rect(),
            Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0))
        );
        assert_eq!(q.area(), 4.0);
    }

    #[test]
    fn relation_three_way_for_circle() {
        let q = Range::circle(Point::new(0.0, 0.0), 2.0);
        let inside = Rect::new(Point::new(-0.5, -0.5), Point::new(0.5, 0.5));
        let partial = Rect::new(Point::new(1.0, -0.5), Point::new(3.0, 0.5));
        let outside = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert_eq!(q.relation(&inside), RectRelation::Contained);
        assert_eq!(q.relation(&partial), RectRelation::Intersecting);
        assert_eq!(q.relation(&outside), RectRelation::Disjoint);
    }

    #[test]
    fn relation_three_way_for_rect() {
        let q = Range::rect(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let inside = Rect::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        let partial = Rect::new(Point::new(3.0, 3.0), Point::new(5.0, 5.0));
        let outside = Rect::new(Point::new(9.0, 9.0), Point::new(10.0, 10.0));
        assert_eq!(q.relation(&inside), RectRelation::Contained);
        assert_eq!(q.relation(&partial), RectRelation::Intersecting);
        assert_eq!(q.relation(&outside), RectRelation::Disjoint);
    }

    #[test]
    fn conversions_from_shapes() {
        let c: Range = Circle::new(Point::new(0.0, 0.0), 1.0).into();
        let r: Range = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).into();
        assert!(matches!(c, Range::Circle(_)));
        assert!(matches!(r, Range::Rect(_)));
    }
}
