//! Axis-aligned rectangles.

use serde::{Deserialize, Serialize};

use crate::Point;

/// An axis-aligned rectangle, closed on all sides.
///
/// Rectangles serve three roles in `fedra`:
///
/// * rectangular FRA query ranges (Definition 2 allows rectangles),
/// * grid-index cells,
/// * R-tree minimum bounding rectangles (MBRs).
///
/// An "empty" rectangle (used as the identity for [`Rect::union`]) has
/// `min > max`; [`Rect::is_empty`] reports it and every predicate treats it
/// as containing nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing their order.
    pub fn new(a: Point, b: Point) -> Self {
        Self {
            min: a.min(&b),
            max: a.max(&b),
        }
    }

    /// Creates a rectangle from raw corner coordinates without reordering.
    ///
    /// Callers must guarantee `min <= max` component-wise, or intend an
    /// empty rectangle.
    #[inline]
    pub const fn from_corners(min: Point, max: Point) -> Self {
        Self { min, max }
    }

    /// The empty rectangle: identity element for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min: Point::new(f64::INFINITY, f64::INFINITY),
        max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// A degenerate rectangle covering exactly one point.
    #[inline]
    pub const fn from_point(p: Point) -> Self {
        Self { min: p, max: p }
    }

    /// Whether this rectangle contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along the x axis (zero for empty rectangles).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along the y axis (zero for empty rectangles).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area (zero for empty rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point. Meaningless for empty rectangles.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies entirely inside `self` (closed containment).
    ///
    /// Every rectangle contains the empty rectangle.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (self.min.x <= other.min.x
                && self.min.y <= other.min.y
                && self.max.x >= other.max.x
                && self.max.y >= other.max.y)
    }

    /// Whether the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// Intersection of the two rectangles ([`Rect::EMPTY`]-like when disjoint).
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        }
    }

    /// Squared distance from `p` to the closest point of the rectangle
    /// (zero when `p` is inside).
    ///
    /// This is the standard MINDIST used for circle/rectangle intersection
    /// tests and R-tree pruning.
    #[inline]
    pub fn min_distance_sq(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Squared distance from `p` to the farthest corner of the rectangle.
    ///
    /// Used to decide whether a circle fully covers a rectangle.
    #[inline]
    pub fn max_distance_sq(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// Grows the rectangle by `margin` on every side.
    #[inline]
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn new_normalizes_corner_order() {
        let a = Rect::new(Point::new(5.0, 1.0), Point::new(2.0, 4.0));
        assert_eq!(a.min, Point::new(2.0, 1.0));
        assert_eq!(a.max, Point::new(5.0, 4.0));
    }

    #[test]
    fn empty_rect_behaves_as_identity() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert_eq!(Rect::EMPTY.area(), 0.0);
        assert!(!Rect::EMPTY.intersects(&a));
        assert!(!Rect::EMPTY.contains_point(&Point::new(0.0, 0.0)));
    }

    #[test]
    fn contains_point_is_closed() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(a.contains_point(&Point::new(0.0, 0.0)));
        assert!(a.contains_point(&Point::new(2.0, 2.0)));
        assert!(a.contains_point(&Point::new(1.0, 1.0)));
        assert!(!a.contains_point(&Point::new(2.0001, 1.0)));
    }

    #[test]
    fn rect_containment_and_intersection() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        let overlapping = r(9.0, 9.0, 12.0, 12.0);
        let disjoint = r(20.0, 20.0, 21.0, 21.0);

        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.intersects(&inner));
        assert!(outer.intersects(&overlapping));
        assert!(!outer.contains_rect(&overlapping));
        assert!(!outer.intersects(&disjoint));
        assert!(outer.contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn touching_edges_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(3.0, -1.0, 4.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, -1.0, 4.0, 1.0));
    }

    #[test]
    fn intersection_of_disjoint_is_empty() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(a.intersection(&b).is_empty());
        let c = r(0.5, 0.5, 2.5, 2.5);
        assert_eq!(a.intersection(&c), r(0.5, 0.5, 1.0, 1.0));
    }

    #[test]
    fn min_distance_sq_zero_inside() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_distance_sq(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_distance_sq(&Point::new(3.0, 1.0)), 1.0);
        assert_eq!(a.min_distance_sq(&Point::new(3.0, 3.0)), 2.0);
    }

    #[test]
    fn max_distance_sq_reaches_far_corner() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        // farthest corner from (0,0) is (2,2)
        assert_eq!(a.max_distance_sq(&Point::new(0.0, 0.0)), 8.0);
        // from center, all corners equidistant
        assert_eq!(a.max_distance_sq(&Point::new(1.0, 1.0)), 2.0);
    }

    #[test]
    fn geometry_accessors() {
        let a = r(1.0, 2.0, 4.0, 6.0);
        assert_eq!(a.width(), 3.0);
        assert_eq!(a.height(), 4.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(a.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn inflate_grows_every_side() {
        let a = r(0.0, 0.0, 1.0, 1.0).inflate(0.5);
        assert_eq!(a, r(-0.5, -0.5, 1.5, 1.5));
    }
}
