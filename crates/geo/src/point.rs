//! Points in the two-dimensional Euclidean plane.

use serde::{Deserialize, Serialize};

/// A location in the plane.
///
/// Coordinates are interpreted as kilometres throughout `fedra` (the
/// workload generator projects lat/lon onto a local tangent plane before
/// constructing objects), but nothing in this crate depends on the unit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (east, km).
    pub x: f64,
    /// Vertical coordinate (north, km).
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred in hot paths (containment tests) because it avoids the
    /// square root; compare against a squared radius instead.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(-3.5, 7.25);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance_sq(&a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(a.distance(&b).powi(2), a.distance_sq(&b));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 9.0);
        let b = Point::new(5.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(5.0, 9.0));
    }

    #[test]
    fn from_tuple_round_trips() {
        let p: Point = (2.5, -1.0).into();
        assert_eq!(p, Point::new(2.5, -1.0));
    }

    #[test]
    fn finiteness_detects_nan_and_inf() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new(4.0, 6.0).to_string(), "(4, 6)");
    }
}
