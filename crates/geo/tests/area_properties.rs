//! Property tests for the exact circle ∩ rectangle area computation —
//! the quantity the OPTA baseline and every area-fraction fallback rely
//! on. Wrong areas would silently bias estimates, so the laws here are
//! load-bearing.

use fedra_geo::{circle_rect_intersection_area, intersection_area, Circle, Point, Range, Rect};
use proptest::prelude::*;

fn circle() -> impl Strategy<Value = Circle> {
    (-20.0f64..20.0, -20.0f64..20.0, 0.01f64..15.0)
        .prop_map(|(x, y, r)| Circle::new(Point::new(x, y), r))
}

fn rect() -> impl Strategy<Value = Rect> {
    (-20.0f64..20.0, -20.0f64..20.0, 0.01f64..25.0, 0.01f64..25.0)
        .prop_map(|(x, y, w, h)| Rect::new(Point::new(x, y), Point::new(x + w, y + h)))
}

proptest! {
    #[test]
    fn area_is_bounded_by_both_shapes(c in circle(), r in rect()) {
        let a = circle_rect_intersection_area(&c, &r);
        prop_assert!(a >= 0.0);
        prop_assert!(a <= r.area() + 1e-9);
        prop_assert!(a <= c.area() + 1e-9);
    }

    #[test]
    fn area_positive_iff_proper_intersection(c in circle(), r in rect()) {
        let a = circle_rect_intersection_area(&c, &r);
        if !c.intersects_rect(&r) {
            prop_assert_eq!(a, 0.0);
        }
        // Strict interior overlap ⇒ positive area (grazing contact can
        // legitimately give 0, so test via the rect center).
        if c.contains_point(&r.center()) {
            prop_assert!(a > 0.0, "center inside the disk but area 0");
        }
    }

    #[test]
    fn containment_gives_full_area(c in circle(), r in rect()) {
        if c.contains_rect(&r) {
            let a = circle_rect_intersection_area(&c, &r);
            prop_assert!((a - r.area()).abs() < 1e-9 * (1.0 + r.area()));
        }
    }

    #[test]
    fn additive_across_vertical_split(c in circle(), r in rect(), t in 0.05f64..0.95) {
        let split_x = r.min.x + t * r.width();
        let left = Rect::from_corners(r.min, Point::new(split_x, r.max.y));
        let right = Rect::from_corners(Point::new(split_x, r.min.y), r.max);
        let whole = circle_rect_intersection_area(&c, &r);
        let parts = circle_rect_intersection_area(&c, &left)
            + circle_rect_intersection_area(&c, &right);
        prop_assert!(
            (whole - parts).abs() < 1e-7 * (1.0 + whole),
            "{whole} != {parts}"
        );
    }

    #[test]
    fn additive_across_horizontal_split(c in circle(), r in rect(), t in 0.05f64..0.95) {
        let split_y = r.min.y + t * r.height();
        let bottom = Rect::from_corners(r.min, Point::new(r.max.x, split_y));
        let top = Rect::from_corners(Point::new(r.min.x, split_y), r.max);
        let whole = circle_rect_intersection_area(&c, &r);
        let parts = circle_rect_intersection_area(&c, &bottom)
            + circle_rect_intersection_area(&c, &top);
        prop_assert!((whole - parts).abs() < 1e-7 * (1.0 + whole));
    }

    #[test]
    fn translation_invariance(c in circle(), r in rect(), dx in -50.0f64..50.0, dy in -50.0f64..50.0) {
        let a0 = circle_rect_intersection_area(&c, &r);
        let c2 = Circle::new(Point::new(c.center.x + dx, c.center.y + dy), c.radius);
        let r2 = Rect::from_corners(
            Point::new(r.min.x + dx, r.min.y + dy),
            Point::new(r.max.x + dx, r.max.y + dy),
        );
        let a1 = circle_rect_intersection_area(&c2, &r2);
        prop_assert!((a0 - a1).abs() < 1e-7 * (1.0 + a0));
    }

    #[test]
    fn monotone_in_radius(cx in -10.0f64..10.0, cy in -10.0f64..10.0,
                          r1 in 0.1f64..5.0, dr in 0.0f64..5.0, rect in rect()) {
        let small = Circle::new(Point::new(cx, cy), r1);
        let big = Circle::new(Point::new(cx, cy), r1 + dr);
        let a_small = circle_rect_intersection_area(&small, &rect);
        let a_big = circle_rect_intersection_area(&big, &rect);
        prop_assert!(a_big >= a_small - 1e-9);
    }

    #[test]
    fn monotone_in_rect_growth(c in circle(), r in rect(), pad in 0.0f64..5.0) {
        let grown = r.inflate(pad);
        let a = circle_rect_intersection_area(&c, &r);
        let a_grown = circle_rect_intersection_area(&c, &grown);
        prop_assert!(a_grown >= a - 1e-9);
    }

    #[test]
    fn range_dispatch_agrees(c in circle(), r in rect()) {
        let direct = circle_rect_intersection_area(&c, &r);
        let via_range = intersection_area(&Range::Circle(c), &r);
        prop_assert_eq!(direct, via_range);
    }

    #[test]
    fn lattice_cross_check(c in circle(), r in rect()) {
        // 64×64 midpoint lattice: crude but unbiased; agreement within
        // a few percent of the larger magnitude.
        let analytic = circle_rect_intersection_area(&c, &r);
        let n = 64;
        let mut hits = 0u32;
        for i in 0..n {
            for j in 0..n {
                let x = r.min.x + (i as f64 + 0.5) / n as f64 * r.width();
                let y = r.min.y + (j as f64 + 0.5) / n as f64 * r.height();
                if c.contains_point(&Point::new(x, y)) {
                    hits += 1;
                }
            }
        }
        let lattice = hits as f64 / (n * n) as f64 * r.area();
        let tolerance = 0.05 * r.area().max(1.0);
        prop_assert!(
            (analytic - lattice).abs() < tolerance,
            "analytic {analytic} vs lattice {lattice}"
        );
    }
}
