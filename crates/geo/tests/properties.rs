//! Property-based tests for the geometry substrate.
//!
//! These pin down the algebraic laws that every index in `fedra-index`
//! silently relies on: if `relation` ever disagreed with `contains_point`,
//! the aggregate R-tree and the grid estimators would return wrong answers
//! while looking perfectly healthy.

use fedra_geo::{Circle, GeoPoint, Point, Projection, Range, Rect, RectRelation};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), pt()).prop_map(|(a, b)| Rect::new(a, b))
}

fn circle() -> impl Strategy<Value = Circle> {
    (pt(), 0.0f64..50.0).prop_map(|(c, r)| Circle::new(c, r))
}

fn range() -> impl Strategy<Value = Range> {
    prop_oneof![
        circle().prop_map(Range::Circle),
        rect().prop_map(Range::Rect),
    ]
}

proptest! {
    #[test]
    fn distance_triangle_inequality(a in pt(), b in pt(), c in pt()) {
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    #[test]
    fn distance_symmetry(a in pt(), b in pt()) {
        prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn rect_union_contains_operands(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn rect_union_is_commutative(a in rect(), b in rect()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn rect_intersection_within_operands(a in rect(), b in rect()) {
        let i = a.intersection(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
        }
    }

    #[test]
    fn rect_intersects_iff_nonempty_intersection(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
    }

    #[test]
    fn rect_contains_point_implies_intersects_point_rect(r in rect(), p in pt()) {
        if r.contains_point(&p) {
            prop_assert!(r.intersects(&Rect::from_point(p)));
        }
    }

    #[test]
    fn min_distance_zero_iff_inside_or_on_boundary(r in rect(), p in pt()) {
        prop_assert_eq!(r.min_distance_sq(&p) == 0.0, r.contains_point(&p));
    }

    #[test]
    fn max_distance_at_least_min_distance(r in rect(), p in pt()) {
        prop_assert!(r.max_distance_sq(&p) >= r.min_distance_sq(&p));
    }

    #[test]
    fn circle_bounding_rect_covers_contained_points(c in circle(), p in pt()) {
        if c.contains_point(&p) {
            prop_assert!(c.bounding_rect().contains_point(&p));
        }
    }

    #[test]
    fn circle_contains_rect_implies_contains_corners(c in circle(), r in rect()) {
        if c.contains_rect(&r) && !r.is_empty() {
            prop_assert!(c.contains_point(&r.min));
            prop_assert!(c.contains_point(&r.max));
            prop_assert!(c.contains_point(&Point::new(r.min.x, r.max.y)));
            prop_assert!(c.contains_point(&Point::new(r.max.x, r.min.y)));
        }
    }

    #[test]
    fn circle_point_in_rect_implies_intersection(c in circle(), r in rect(), p in pt()) {
        if c.contains_point(&p) && r.contains_point(&p) {
            prop_assert!(c.intersects_rect(&r));
        }
    }

    // The pruning trichotomy every index traversal relies on.
    #[test]
    fn relation_is_consistent(q in range(), r in rect()) {
        match q.relation(&r) {
            RectRelation::Disjoint => prop_assert!(!q.intersects_rect(&r)),
            RectRelation::Contained => {
                prop_assert!(q.contains_rect(&r));
                prop_assert!(q.intersects_rect(&r) || r.is_empty());
            }
            RectRelation::Intersecting => {
                prop_assert!(q.intersects_rect(&r));
                prop_assert!(!q.contains_rect(&r));
            }
        }
    }

    // Disjoint ranges contain none of the rectangle's points; contained
    // ranges contain all of them (sampled at the corners and the center).
    #[test]
    fn relation_agrees_with_point_membership(q in range(), r in rect()) {
        if r.is_empty() {
            return Ok(());
        }
        let samples = [
            r.min,
            r.max,
            Point::new(r.min.x, r.max.y),
            Point::new(r.max.x, r.min.y),
            r.center(),
        ];
        match q.relation(&r) {
            RectRelation::Disjoint => {
                for s in &samples {
                    prop_assert!(!q.contains_point(s));
                }
            }
            RectRelation::Contained => {
                for s in &samples {
                    prop_assert!(q.contains_point(s));
                }
            }
            RectRelation::Intersecting => {}
        }
    }

    #[test]
    fn projection_round_trip(lat in 39.0f64..43.0, lon in 115.0f64..118.0) {
        let proj = Projection::beijing();
        let g = GeoPoint::new(lat, lon);
        let back = proj.unproject(&proj.project(&g));
        prop_assert!((back.lat - lat).abs() < 1e-9);
        prop_assert!((back.lon - lon).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_city_scale_distance(
        lat1 in 40.5f64..41.0, lon1 in 116.0f64..116.7,
        lat2 in 40.5f64..41.0, lon2 in 116.0f64..116.7,
    ) {
        let proj = Projection::beijing();
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let sphere = a.haversine_distance(&b);
        if sphere > 0.1 {
            let planar = proj.project(&a).distance(&proj.project(&b));
            prop_assert!(((planar - sphere) / sphere).abs() < 0.01);
        }
    }
}
