//! Integration tests for the beyond-the-paper extensions working
//! together: adaptive planning, k-silo pooling, caching, warm restarts,
//! and CSV interchange — all through the public `fedra` API.

use std::time::Duration;

use fedra::prelude::*;

fn testbed(seed: u64) -> (Federation, Vec<SpatialObject>, Vec<Vec<SpatialObject>>) {
    let spec = WorkloadSpec::default()
        .with_total_objects(40_000)
        .with_silos(4)
        .with_seed(seed);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let partitions = dataset.partitions().to_vec();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(partitions.clone());
    (federation, all, partitions)
}

#[test]
fn adaptive_planner_matches_or_beats_iid_accuracy() {
    let (fed, all, _) = testbed(1);
    let mut generator = QueryGenerator::new(&all, 2);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 25)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();
    let exact = Exact::new();
    let truth: Vec<f64> = queries
        .iter()
        .map(|q| exact.execute(&fed, q).value)
        .collect();

    let planner = AdaptivePlanner::new(3, PlannerPolicy::default());
    let iid = IidEst::new(4);
    let mre = |alg: &dyn FraAlgorithm| -> f64 {
        queries
            .iter()
            .zip(&truth)
            .map(|(q, &t)| alg.execute(&fed, q).relative_error(t))
            .sum::<f64>()
            / queries.len() as f64
    };
    let planner_mre = mre(&planner);
    let iid_mre = mre(&iid);
    assert!(
        planner_mre <= iid_mre + 0.02,
        "planner ({planner_mre}) should not lose to always-IID ({iid_mre})"
    );
}

#[test]
fn pooled_sampling_tightens_toward_exact() {
    let (fed, all, _) = testbed(5);
    let mut generator = QueryGenerator::new(&all, 6);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 15)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();
    let exact = Exact::new();
    let truth: Vec<f64> = queries
        .iter()
        .map(|q| exact.execute(&fed, q).value)
        .collect();
    let mre = |k: usize| -> f64 {
        let alg = MultiSiloEst::new(7 + k as u64, k);
        queries
            .iter()
            .zip(&truth)
            .map(|(q, &t)| alg.execute(&fed, q).relative_error(t))
            .sum::<f64>()
            / queries.len() as f64
    };
    let e1 = mre(1);
    let e4 = mre(4);
    assert!(e4 < e1, "pooling all silos ({e4}) must beat k=1 ({e1})");
    assert!(e4 < 0.02, "k=m pooling should be near exact, got {e4}");
}

#[test]
fn cached_planner_stack_composes() {
    // Cache on top of the adaptive planner: both wrappers are transparent
    // FraAlgorithms, so they stack.
    let (fed, all, _) = testbed(8);
    // The deprecated alias must keep composing like the old cache did.
    #[allow(deprecated)]
    let stack = CachedAlgorithm::new(
        AdaptivePlanner::new(9, PlannerPolicy::default()),
        CacheConfig {
            capacity: 64,
            ttl: Duration::from_secs(60),
        },
    );
    let mut generator = QueryGenerator::new(&all, 10);
    let hot = FraQuery::new(generator.circle(2.0), AggFunc::Count);
    let first = stack.execute(&fed, &hot);
    fed.reset_query_comm();
    for _ in 0..5 {
        assert_eq!(stack.execute(&fed, &hot).value, first.value);
    }
    assert_eq!(fed.query_comm().rounds, 0);
    assert_eq!(stack.stats().hits, 5);
}

#[test]
fn warm_restart_preserves_estimator_behavior() {
    let (fed, all, partitions) = testbed(11);
    let snapshot = fed.snapshot();
    let bounds = fed.bounds();
    let mut generator = QueryGenerator::new(&all, 12);
    let q = FraQuery::new(generator.circle(2.0), AggFunc::Count);
    let before = NonIidEst::new(13).execute(&fed, &q);
    drop(fed);

    let warm = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .warm_start(snapshot)
        .build(partitions);
    assert_eq!(warm.warm_start_hits(), 4);
    let after = NonIidEst::new(13).execute(&warm, &q);
    // Same seed, same provider state → identical estimate.
    assert_eq!(before.value, after.value);
}

#[test]
fn csv_export_import_preserves_query_answers() {
    let (fed, _, partitions) = testbed(14);
    let bounds = fed.bounds();
    let dataset = Dataset::from_partitions(bounds, partitions);
    let dir = std::env::temp_dir().join("fedra-extensions-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("export.csv");
    fedra::workload::write_csv(&dataset, &path).unwrap();
    let loaded = fedra::workload::read_csv(&path, 1.0).unwrap();
    let fed2 = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .build(loaded.into_partitions());

    let q = FraQuery::circle(Point::new(0.0, -95.0), 2.0, AggFunc::Sum);
    let a = Exact::new().execute(&fed, &q).value;
    let b = Exact::new().execute(&fed2, &q).value;
    assert_eq!(a, b, "CSV round trip changed the data");
    let _ = std::fs::remove_file(&path);
}
