//! Seeded chaos soak: the estimators must survive a mixed fault plan —
//! one slow silo (beyond the hedge threshold) plus one flapping silo —
//! inside the deadline budget, with bounded error, reconciled counters,
//! and reproducible results.
//!
//! Three contracts are pinned here:
//!
//! * **Envelope**: under chaos, every query still answers within the
//!   Lemma-1-style error envelope the failure-injection tests use.
//! * **Reconciliation**: retry/hedge/resample counters account for every
//!   silo request, and the obs comm mirror matches the transport's own
//!   byte counters bit for bit.
//! * **Determinism**: timing-free fault plans (flap schedules, no
//!   injected latency, no hedging) are bit-identical across silo pool
//!   sizes, and a *disarmed* fault plan is bit-identical to a build with
//!   no plan at all.

use std::time::Duration;

use fedra::prelude::*;

fn generate(seed: u64) -> (fedra::workload::Dataset, Vec<SpatialObject>) {
    let spec = WorkloadSpec::default()
        .with_total_objects(30_000)
        .with_silos(6)
        .with_seed(seed);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    (dataset, all)
}

fn count_queries(all: &[SpatialObject], n: usize, seed: u64) -> Vec<FraQuery> {
    let mut generator = QueryGenerator::new(all, seed);
    generator
        .circles(2.0, n)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect()
}

fn counter_sum_with_prefix(snapshot: &MetricsSnapshot, prefix: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(_, v)| *v)
        .sum()
}

fn counter(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn chaos_soak_stays_within_the_error_envelope() {
    let (dataset, all) = generate(0xC0A5);
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .lsr_seed(99)
        .fault_plan(
            FaultPlan::seeded(7)
                .slow_silo(0, Duration::from_millis(40))
                .flapping_silo(1, 2, 1),
        )
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_secs(2)),
            hedge_after: Some(Duration::from_millis(10)),
            ..Default::default()
        })
        .health_config(HealthConfig::enabled())
        .build(dataset.into_partitions());
    let queries = count_queries(&all, 250, 17);
    assert_eq!(queries.len(), 250);

    // Ground truth with the chaos disarmed (EXACT hard-fails under
    // flaps, and must not advance the injector sequences).
    fed.set_faults_armed(false);
    let exact = Exact::new();
    let truths: Vec<f64> = queries
        .iter()
        .map(|q| exact.execute(&fed, q).value)
        .collect();
    fed.set_faults_armed(true);

    let alg = NonIidEst::new(41);
    let obs = ObsContext::new();
    fed.reset_query_comm();
    let started = std::time::Instant::now();
    let batch = QueryEngine::per_silo(&alg, &fed).execute_batch_with(&fed, &queries, &obs);
    let wall = started.elapsed();
    assert_eq!(batch.failures(), 0, "estimators never fail under chaos");

    // Every query answers inside the deadline budget — the whole soak
    // must not look like 250 sequential 40 ms stalls.
    assert!(
        wall < Duration::from_secs(30),
        "soak took {wall:?}: hedging did not mask the slow silo"
    );
    for (i, (r, truth)) in batch.results.iter().zip(&truths).enumerate() {
        let r = r.as_ref().expect("no per-query failures");
        // The envelope is relative for queries with enough mass; for
        // near-empty ranges (a handful of objects) relative error is
        // noise, so bound the absolute miss instead.
        assert!(
            r.relative_error(*truth) < 0.35 || (r.value - truth).abs() < 25.0,
            "query {i}: error {} (truth {truth})",
            r.relative_error(*truth)
        );
    }

    let snap = obs.snapshot();
    let hedges_fired = counter(&snap, "fedra_hedges_fired_total");
    let hedges_won = counter(&snap, "fedra_hedges_won_total");
    let retries = counter(&snap, "fedra_retries_total");
    let resamples = counter(&snap, "fedra_resamples_total");
    let requests = counter_sum_with_prefix(&snap, "fedra_silo_requests_total");

    // The slow silo overruns the 10 ms hedge threshold every time it is
    // someone's first candidate, and the flapping silo refuses every
    // second frame, so both mechanisms must have fired. On the socket
    // backend a flapped frame's transient failure can be swallowed when
    // the hedge wins the race first (kernel scheduling decides which
    // lands first), so a won hedge also witnesses the flap there.
    assert!(hedges_fired > 0, "slow silo never triggered a hedge");
    let socket_backend = std::env::var("FEDRA_TRANSPORT").as_deref() == Ok("socket");
    assert!(
        retries > 0 || (socket_backend && hedges_won > 0),
        "flapping silo never triggered a retry"
    );
    assert!(hedges_won <= hedges_fired, "{hedges_won} > {hedges_fired}");

    // Request accounting: every planned query fires at least its first
    // frame, and every extra frame is a recorded retry, hedge, or
    // resample (some re-fires are won by a parked primary first, hence
    // the upper bound).
    assert_eq!(counter(&snap, "fedra_plan_remote_total"), 250);
    assert!(requests >= 250, "{requests} < 250");
    assert!(
        requests <= 250 + retries + hedges_fired + resamples,
        "{requests} requests exceed 250 + {retries} retries + {hedges_fired} hedges + {resamples} resamples"
    );
    // Every query resolved exactly one way: a sampled silo or the
    // grid-only degradation.
    let sampled = counter_sum_with_prefix(&snap, "fedra_sampled_silo_total");
    let degraded = counter(&snap, "fedra_degraded_total");
    assert_eq!(sampled + degraded, 250);
    assert_eq!(counter(&snap, "fedra_queries_total"), 250);

    // The obs comm mirror matches the transport's own accounting bit for
    // bit, chaos or not.
    let mirrored = obs.comm_snapshot();
    let transport = fed.query_comm();
    assert_eq!(mirrored.bytes_up, transport.bytes_up);
    assert_eq!(mirrored.bytes_down, transport.bytes_down);
    assert_eq!(mirrored.rounds, transport.rounds);
}

#[test]
fn deterministic_faults_are_bit_identical_across_pool_sizes() {
    // Flap schedules are pure counters — no clocks, no RNG on the worker
    // side — and without hedging or deadlines the engine's control flow
    // never consults wall time. Pool size must then trade wall-clock
    // only, exactly like the healthy-path equivalence suite.
    let run = |threads: usize| -> (Vec<u64>, std::collections::BTreeMap<String, u64>) {
        let (dataset, all) = generate(0xD1CE);
        let fed = FederationBuilder::new(dataset.bounds())
            .grid_cell_len(1.0)
            .lsr_seed(99)
            .silo_threads(threads)
            .fault_plan(FaultPlan::seeded(11).flapping_silo(1, 3, 1))
            .health_config(HealthConfig::enabled())
            .build(dataset.into_partitions());
        let queries = count_queries(&all, 120, 23);
        let alg = NonIidEst::new(5);
        let obs = ObsContext::new();
        let batch = QueryEngine::per_silo(&alg, &fed).execute_batch_with(&fed, &queries, &obs);
        assert_eq!(batch.failures(), 0);
        let bits = batch
            .results
            .iter()
            .map(|r| r.as_ref().expect("no failures").value.to_bits())
            .collect();
        (bits, obs.snapshot().counters)
    };
    let (reference_bits, reference_counters) = run(1);
    let (bits, counters) = run(4);
    assert_eq!(bits, reference_bits, "answers diverged across pool sizes");
    assert_eq!(
        counters, reference_counters,
        "retry/resample accounting diverged across pool sizes"
    );
}

#[test]
fn disarmed_fault_plan_matches_the_unfaulted_build_bit_for_bit() {
    let queries_for = |all: &[SpatialObject]| count_queries(all, 120, 29);

    let (dataset, all) = generate(0xFA57);
    let plain = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .lsr_seed(99)
        .build(dataset.into_partitions());
    let alg = IidEst::new(42);
    let reference: Vec<u64> = QueryEngine::per_silo(&alg, &plain)
        .execute_batch(&plain, &queries_for(&all))
        .results
        .iter()
        .map(|r| r.as_ref().expect("healthy batch").value.to_bits())
        .collect();

    // Same data, same seeds, full chaos configuration — but disarmed.
    // The deadline/hedge machinery idles (a parked primary still wins its
    // race) and the breaker stays closed, so the answers are the same
    // bits as a build that never heard of fault plans.
    let (dataset, all) = generate(0xFA57);
    let chaotic = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .lsr_seed(99)
        .fault_plan(
            FaultPlan::seeded(7)
                .slow_silo(0, Duration::from_millis(400))
                .flapping_silo(1, 2, 1),
        )
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_secs(2)),
            hedge_after: Some(Duration::from_millis(250)),
            ..Default::default()
        })
        .health_config(HealthConfig::enabled())
        .build(dataset.into_partitions());
    chaotic.set_faults_armed(false);
    let alg = IidEst::new(42);
    let got: Vec<u64> = QueryEngine::per_silo(&alg, &chaotic)
        .execute_batch(&chaotic, &queries_for(&all))
        .results
        .iter()
        .map(|r| r.as_ref().expect("healthy batch").value.to_bits())
        .collect();
    assert_eq!(got, reference, "a disarmed fault plan changed the answers");
}
