//! Tier-1 gate: the workspace must pass `fedra-lint` with no
//! non-baselined findings and no stale baseline entries.
//!
//! This is the same pass as `cargo run -p fedra-lint -- check`, wired
//! into the root package's test suite so plain `cargo test` enforces it.

use fedra_lint::registry::Registry;
use fedra_lint::workspace::run_check;

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let registry = Registry::with_default_lints();
    let report = run_check(root, &registry).expect("workspace is readable");
    assert!(report.files_checked > 0, "no source files found");
    assert!(
        report.failing.is_empty(),
        "non-baselined lint findings:\n{}",
        report
            .failing
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries (delete them from crates/lint/baseline.txt):\n{}",
        report.stale_baseline.join("\n")
    );
}
