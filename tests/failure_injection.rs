//! Failure-injection integration: the availability ladder the estimators
//! climb down as silos disappear, and the hard-fail semantics of the
//! fan-out baselines.

use fedra::prelude::*;

fn testbed(seed: u64) -> (Federation, f64, FraQuery) {
    let spec = WorkloadSpec::default()
        .with_total_objects(30_000)
        .with_silos(5)
        .with_seed(seed);
    let dataset = spec.generate();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let q = FraQuery::circle(Point::new(0.0, -95.0), 2.0, AggFunc::Count);
    let truth = Exact::new().execute(&federation, &q).value;
    assert!(truth > 100.0, "query must hit data: {truth}");
    (federation, truth, q)
}

#[test]
fn exact_and_opta_fail_fast_on_any_down_silo() {
    let (fed, _, q) = testbed(1);
    fed.set_silo_failed(2, true);
    assert!(matches!(
        Exact::new().try_execute(&fed, &q),
        Err(FraError::SiloFailed(_))
    ));
    assert!(matches!(
        Opta::new().try_execute(&fed, &q),
        Err(FraError::SiloFailed(_))
    ));
}

#[test]
fn estimators_survive_partial_outages() {
    let (fed, truth, q) = testbed(2);
    // Progressive outage: keep failing silos; the estimators must keep
    // answering with bounded error as long as one candidate remains.
    for down in 0..4 {
        fed.set_silo_failed(down, true);
        let r = NonIidEst::new(3 + down as u64).execute(&fed, &q);
        assert!(
            r.relative_error(truth) < 0.35,
            "with {} silos down: error {}",
            down + 1,
            r.relative_error(truth)
        );
        let r = IidEst::new(30 + down as u64).execute(&fed, &q);
        assert!(
            r.relative_error(truth) < 0.5,
            "IID with {} silos down: error {}",
            down + 1,
            r.relative_error(truth)
        );
    }
}

#[test]
fn estimators_degrade_to_grid_only_under_total_outage() {
    let (fed, truth, q) = testbed(3);
    for k in 0..fed.num_silos() {
        fed.set_silo_failed(k, true);
    }
    fed.reset_query_comm();
    let r = NonIidEst::new(4).execute(&fed, &q);
    assert!(r.sampled_silo.is_none());
    assert!(
        r.relative_error(truth) < 0.5,
        "grid-only degradation error {}",
        r.relative_error(truth)
    );
    // Dead silos still cost failed rounds (the resample attempts), but
    // the answer comes from provider state.
    let comm = fed.query_comm();
    assert!(comm.rounds <= fed.num_silos() as u64);
}

#[test]
fn recovery_restores_single_round_behavior() {
    let (fed, truth, q) = testbed(5);
    for k in 0..fed.num_silos() {
        fed.set_silo_failed(k, true);
    }
    let _ = NonIidEst::new(6).execute(&fed, &q);
    for k in 0..fed.num_silos() {
        fed.set_silo_failed(k, false);
    }
    fed.reset_query_comm();
    let r = NonIidEst::new(7).execute(&fed, &q);
    assert_eq!(fed.query_comm().rounds, 1);
    assert!(r.sampled_silo.is_some());
    assert!(r.relative_error(truth) < 0.3);
}

#[test]
fn batch_execution_tolerates_mid_batch_failures() {
    let spec = WorkloadSpec::default()
        .with_total_objects(20_000)
        .with_silos(4)
        .with_seed(8);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let mut generator = QueryGenerator::new(&all, 9);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 60)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();

    fed.set_silo_failed(0, true);
    fed.set_silo_failed(1, true);
    let alg = IidEst::new(10);
    let engine = QueryEngine::per_silo(&alg, &fed);
    let batch = engine.execute_batch(&fed, &queries);
    assert_eq!(batch.failures(), 0, "estimators never fail a batch");
    // No answer may come from a failed silo.
    for r in &batch.results {
        if let Some(silo) = r.as_ref().unwrap().sampled_silo {
            assert!(silo >= 2, "answer came from failed silo {silo}");
        }
    }
}
