//! Observability-layer integration tests: span balance under silo-side
//! panic degradation, metric determinism across pool sizes, exporter
//! round-trips, and the instrumented-batch acceptance run (nQ = 250,
//! m = 6, IID-est) whose comm mirror must match the transport's own
//! accounting bit for bit.

use std::sync::atomic::{AtomicUsize, Ordering};

use fedra::core::{drive_planned, QueryPlan, RemotePlan};
use fedra::federation::{LocalMode, Request, Response};
use fedra::prelude::*;

fn build(
    silos: usize,
    objects: usize,
    seed: u64,
    threads: usize,
) -> (Federation, Vec<SpatialObject>) {
    let spec = WorkloadSpec::default()
        .with_total_objects(objects)
        .with_silos(silos)
        .with_seed(seed);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .lsr_seed(99)
        .silo_threads(threads)
        .build(dataset.into_partitions());
    (fed, all)
}

fn count_queries(all: &[SpatialObject], n: usize, seed: u64) -> Vec<FraQuery> {
    let mut generator = QueryGenerator::new(all, seed);
    generator
        .circles(2.0, n)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect()
}

fn counter_sum_with_prefix(snapshot: &MetricsSnapshot, prefix: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(_, v)| *v)
        .sum()
}

/// A planning algorithm whose every second query ships a request that
/// *panics* inside the silo's batch handler (`BuildGrid` with a negative
/// cell length trips the `GridSpec` assertion). The panic comes back as a
/// per-item `Response::Error`, the engine resamples down the candidate
/// order, and — both candidates panicking — degrades to the grid
/// estimate. Traces must stay balanced through all of it.
struct PanicEverySecond {
    tick: AtomicUsize,
}

impl FraAlgorithm for PanicEverySecond {
    fn name(&self) -> &'static str {
        "panic-mix"
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &fedra::obs::ObsContext,
    ) -> Result<QueryResult, FraError> {
        drive_planned(self, federation, query, obs)
    }

    fn supports_planning(&self) -> bool {
        true
    }

    fn plan_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        _obs: &fedra::obs::ObsContext,
    ) -> QueryPlan {
        let i = self.tick.fetch_add(1, Ordering::SeqCst);
        let m = federation.num_silos();
        let request = if i % 2 == 0 {
            Request::Aggregate {
                range: query.range,
                mode: LocalMode::Exact,
            }
        } else {
            Request::BuildGrid {
                bounds: federation.bounds(),
                cell_len: -1.0,
                return_cells: false,
            }
        };
        QueryPlan::SingleSilo(RemotePlan {
            order: vec![i % m, (i + 1) % m],
            request,
        })
    }

    fn finish_with(
        &self,
        _federation: &Federation,
        query: &FraQuery,
        silo: SiloId,
        response: Response,
        rounds: u64,
        _obs: &fedra::obs::ObsContext,
    ) -> Result<QueryResult, FraError> {
        match response {
            Response::Agg(a) => Ok(QueryResult::from_aggregate(a, query.func)
                .with_silo(silo)
                .with_rounds(rounds)),
            _ => Err(FraError::ProtocolViolation {
                silo,
                expected: "Agg",
            }),
        }
    }
}

#[test]
fn spans_stay_balanced_under_batch_panic_degradation() {
    let (fed, all) = build(3, 6_000, 101, 2);
    let queries = count_queries(&all, 12, 7);
    let alg = PanicEverySecond {
        tick: AtomicUsize::new(0),
    };
    let obs = ObsContext::new();
    let engine = QueryEngine::per_silo(&alg, &fed);
    let batch = engine.execute_batch_with(&fed, &queries, &obs);

    // Degradation, not failure: panicking queries fall back to the grid
    // estimate.
    assert_eq!(batch.failures(), 0);
    let snapshot = obs.snapshot();
    assert_eq!(snapshot.counters["fedra_degraded_total"], 6);
    // Each odd query burns both candidates (2 resamples each).
    assert_eq!(snapshot.counters["fedra_resamples_total"], 12);

    // Every trace closed every span, even on the degraded path.
    let traces = obs.traces();
    assert_eq!(traces.len(), 12);
    for trace in &traces {
        assert!(trace.is_balanced(), "unbalanced trace: {trace:?}");
        assert!(trace.span_duration_ns("plan").is_some());
        assert!(trace.span_duration_ns("remote").is_some());
    }
    // Exactly the successful half record a finish span.
    let finished = traces
        .iter()
        .filter(|t| t.span_duration_ns("finish").is_some())
        .count();
    assert_eq!(finished, 6);

    // The silos saw the panics: each odd query panicked on 2 silos.
    let silo_panics: u64 = (0..fed.num_silos())
        .map(|k| {
            counter_sum_with_prefix(
                &fed.silo_metrics(k).snapshot(),
                "fedra_silo_batch_panics_total",
            )
        })
        .sum();
    assert_eq!(silo_panics, 12);
}

#[test]
fn metrics_are_deterministic_across_pool_sizes() {
    let run = |threads: usize| {
        let (fed, all) = build(4, 20_000, 23, threads);
        let queries = count_queries(&all, 60, 31);
        let alg = IidEstLsr::new(5, AccuracyParams::default());
        let obs = ObsContext::new();
        QueryEngine::per_silo(&alg, &fed).execute_batch_with(&fed, &queries, &obs);
        let snapshot = obs.snapshot();
        // Strip timing histograms: wall-clock is the one thing allowed to
        // vary with the pool size.
        let histograms: Vec<(String, Vec<u64>)> = snapshot
            .histograms
            .iter()
            .filter(|(name, _)| !name.contains("_ns"))
            .map(|(name, h)| (name.clone(), h.buckets.clone()))
            .collect();
        let comm = obs.comm_snapshot();
        (
            snapshot.counters,
            snapshot.gauges,
            histograms,
            (comm.bytes_up, comm.bytes_down, comm.rounds),
        )
    };
    let reference = run(1);
    assert_eq!(run(4), reference, "metrics diverged across pool sizes");
}

#[test]
fn prometheus_export_round_trips() {
    let (fed, all) = build(3, 8_000, 47, 2);
    let queries = count_queries(&all, 20, 11);
    let alg = IidEst::new(9);
    let obs = ObsContext::new();
    QueryEngine::per_silo(&alg, &fed).execute_batch_with(&fed, &queries, &obs);

    let text = obs.export_prometheus();
    let parsed = fedra::obs::parse_prometheus(&text);
    let snapshot = obs.snapshot();

    // Every counter (including labeled ones) round-trips exactly.
    assert!(!snapshot.counters.is_empty());
    for (name, value) in &snapshot.counters {
        assert_eq!(
            parsed.get(name).copied(),
            Some(*value as f64),
            "counter {name} lost in round-trip"
        );
    }
    // The comm mirror is exported as the three comm counters.
    let comm = obs.comm_snapshot();
    assert_eq!(parsed["fedra_comm_bytes_up_total"], comm.bytes_up as f64);
    assert_eq!(
        parsed["fedra_comm_bytes_down_total"],
        comm.bytes_down as f64
    );
    assert_eq!(parsed["fedra_comm_rounds_total"], comm.rounds as f64);
    // Histogram counts survive the `_count`-inside-braces splice.
    assert_eq!(
        parsed["fedra_query_rounds_count"],
        snapshot.histograms["fedra_query_rounds"].count as f64
    );
    assert_eq!(
        parsed["fedra_span_ns_count{name=\"plan\"}"],
        snapshot.histograms["fedra_span_ns{name=\"plan\"}"].count as f64
    );

    // The JSON exporter carries the same totals.
    let json = obs.export_json();
    assert!(json.contains("\"fedra_queries_total\": 20"));
    assert!(json.contains("\"fedra_comm_bytes_up_total\""));
}

#[test]
fn acceptance_run_mirrors_comm_and_accounts_every_query() {
    // The PR's acceptance scenario: nQ = 250, m = 6, IID-est, fixed seed.
    let (fed, all) = build(6, 30_000, 0xACCE, 0);
    let queries = count_queries(&all, 250, 17);
    assert_eq!(queries.len(), 250);
    let alg = IidEst::new(42);
    let obs = ObsContext::new();
    fed.reset_query_comm();
    let batch = QueryEngine::per_silo(&alg, &fed).execute_batch_with(&fed, &queries, &obs);
    assert_eq!(batch.failures(), 0);

    let snapshot = obs.snapshot();
    // Every query planned remote and was answered on the first attempt:
    // per-silo request counts and the sampled-silo distribution both sum
    // to nQ.
    assert_eq!(snapshot.counters["fedra_plan_remote_total"], 250);
    assert!(!snapshot.counters.contains_key("fedra_plan_ready_total"));
    assert_eq!(
        counter_sum_with_prefix(&snapshot, "fedra_silo_requests_total"),
        250
    );
    assert_eq!(
        counter_sum_with_prefix(&snapshot, "fedra_sampled_silo_total"),
        250
    );
    // Uniform sampling: no silo is starved.
    for k in 0..6 {
        let count = snapshot
            .counters
            .get(&format!("fedra_sampled_silo_total{{silo=\"{k}\"}}"))
            .copied()
            .unwrap_or(0);
        assert!(count > 10, "silo {k} sampled only {count} of 250");
    }
    assert_eq!(snapshot.counters["fedra_queries_total"], 250);

    // The comm mirror matches the transport's own counters bit for bit.
    let mirrored = obs.comm_snapshot();
    let transport = fed.query_comm();
    assert_eq!(mirrored.bytes_up, transport.bytes_up);
    assert_eq!(mirrored.bytes_down, transport.bytes_down);
    assert_eq!(mirrored.rounds, transport.rounds);
    assert!(mirrored.total_bytes() > 0);

    // Per-phase latency histograms cover every query.
    for phase in ["plan", "remote", "finish"] {
        let hist = &snapshot.histograms[&format!("fedra_span_ns{{name=\"{phase}\"}}")];
        assert_eq!(hist.count, 250, "phase {phase}");
        assert!(hist.sum > 0);
    }
    // All 250 traces fit in the ring, balanced.
    let traces = obs.traces();
    assert_eq!(traces.len(), 250);
    assert!(traces.iter().all(|t| t.is_balanced()));
}

#[test]
fn lsr_variants_record_level_selection() {
    let (fed, all) = build(4, 20_000, 71, 2);
    let queries = count_queries(&all, 80, 13);
    let alg = IidEstLsr::new(3, AccuracyParams::default());
    let obs = ObsContext::new();
    let batch = QueryEngine::per_silo(&alg, &fed).execute_batch_with(&fed, &queries, &obs);
    assert_eq!(batch.failures(), 0);

    let snapshot = obs.snapshot();
    // The accuracy contract the estimator planned with.
    assert_eq!(snapshot.gauges["fedra_accuracy_epsilon"], 0.10);
    assert_eq!(snapshot.gauges["fedra_accuracy_delta"], 0.01);
    assert!(snapshot.histograms["fedra_sum0_count"].count >= 80);

    // Provider-side level-selection histogram: one sample per finished
    // query, and the rescale gauge holds the last 2^l factor.
    let finished = counter_sum_with_prefix(&snapshot, "fedra_sampled_silo_total");
    assert_eq!(
        counter_sum_with_prefix(&snapshot, "fedra_lsr_level_total"),
        finished
    );
    let rescale = snapshot.gauges["fedra_lsr_rescale_factor"];
    assert!(rescale >= 1.0 && rescale.log2().fract() == 0.0);

    // The sampled silos saw LSR-mode descents and recorded the level
    // they served from.
    let silo_levels: u64 = (0..fed.num_silos())
        .map(|k| {
            counter_sum_with_prefix(
                &fed.silo_metrics(k).snapshot(),
                "fedra_silo_lsr_level_total",
            )
        })
        .sum();
    assert!(
        silo_levels >= finished,
        "silo-side levels {silo_levels} < {finished}"
    );
}
