//! Black-box tests of the `fedra-cli` binary: exit codes, output shape,
//! and argument validation.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fedra-cli"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = cli().arg("help").output().expect("run fedra-cli");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("demo"));
    assert!(text.contains("--algo"));
}

#[test]
fn no_arguments_shows_help() {
    let out = cli().output().expect("run fedra-cli");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = cli().arg("frobnicate").output().expect("run fedra-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn unknown_algo_fails_cleanly() {
    let out = cli()
        .args([
            "query",
            "--objects",
            "2000",
            "--silos",
            "2",
            "--algo",
            "magic",
        ])
        .output()
        .expect("run fedra-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown --algo"));
}

#[test]
fn query_count_prints_answer_and_comm() {
    let out = cli()
        .args([
            "query",
            "--objects",
            "5000",
            "--silos",
            "2",
            "--x",
            "0",
            "--y",
            "-95",
            "--radius",
            "3",
            "--func",
            "count",
            "--algo",
            "exact",
        ])
        .output()
        .expect("run fedra-cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("answer:"));
    assert!(text.contains("comm"));
}

#[test]
fn demo_prints_all_six_algorithms() {
    let out = cli()
        .args([
            "demo",
            "--objects",
            "6000",
            "--silos",
            "3",
            "--queries",
            "5",
        ])
        .output()
        .expect("run fedra-cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for name in [
        "EXACT",
        "OPTA",
        "IID-est",
        "IID-est+LSR",
        "NonIID-est",
        "NonIID-est+LSR",
    ] {
        assert!(text.contains(name), "missing {name} in demo output");
    }
}

#[test]
fn stats_reports_grid_and_memory() {
    let out = cli()
        .args([
            "stats",
            "--objects",
            "4000",
            "--silos",
            "2",
            "--grid-len",
            "2.0",
        ])
        .output()
        .expect("run fedra-cli");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("silos            : 2"));
    assert!(text.contains("grid"));
    assert!(text.contains("per-silo index memory"));
}

#[test]
fn malformed_flags_fail() {
    let out = cli()
        .args(["demo", "--objects"]) // missing value
        .output()
        .expect("run fedra-cli");
    assert!(!out.status.success());
}

#[test]
fn csv_data_drives_the_cli() {
    let dir = std::env::temp_dir().join("fedra-cli-csv-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.csv");
    // A tiny 2-silo fleet around the origin.
    let mut csv = String::from("silo,x_km,y_km,measure\n");
    for i in 0..200 {
        csv.push_str(&format!(
            "{},{},{},1\n",
            i % 2,
            (i % 20) as f64 * 0.1,
            (i / 20) as f64 * 0.1
        ));
    }
    std::fs::write(&path, csv).unwrap();
    let out = cli()
        .args([
            "query",
            "--data",
            path.to_str().unwrap(),
            "--x",
            "1",
            "--y",
            "0.5",
            "--radius",
            "5",
            "--algo",
            "exact",
        ])
        .output()
        .expect("run fedra-cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // All 200 objects are within 5 km of (1, 0.5).
    assert!(text.contains("answer: 200"), "got: {text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn csv_errors_are_reported_with_context() {
    let dir = std::env::temp_dir().join("fedra-cli-csv-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.csv");
    std::fs::write(&path, "0,oops,1,1\n").unwrap();
    let out = cli()
        .args(["stats", "--data", path.to_str().unwrap()])
        .output()
        .expect("run fedra-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sql_statement_answers() {
    let out = cli()
        .args([
            "sql",
            "SELECT COUNT(*) FROM fleet WHERE WITHIN(0, -95, 2)",
            "--objects",
            "5000",
            "--silos",
            "2",
        ])
        .output()
        .expect("run fedra-cli");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("answer:"));
}

#[test]
fn sql_parse_errors_are_clear() {
    let out = cli()
        .args(["sql", "SELECT MEDIAN(measure) FROM f WHERE WITHIN(1,2,3)"])
        .output()
        .expect("run fedra-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("MEDIAN"));
}

#[test]
fn sql_without_statement_shows_usage() {
    let out = cli().args(["sql"]).output().expect("run fedra-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
