//! Pool-size equivalence: every index and every query mode must be
//! **bit-identical** whether silos run on 1 worker or many.
//!
//! The worker pool (DESIGN.md "Threading model") derives all chunk
//! boundaries from input sizes — never from the pool size — and reduces
//! partial aggregates in fixed chunk order, so parallelism trades only
//! wall-clock, never bits. These tests pin that contract end to end
//! through the public `fedra` API: grids, prefix grids, the STR-packed
//! aR-tree (via EXACT), the LSR-Forest (via the +LSR estimators), and
//! the seeded samplers all have to agree across pool sizes.

use fedra::prelude::*;

const POOL_SIZES: [usize; 2] = [1, 4];

fn build_federation(threads: usize, seed: u64) -> (Federation, Vec<SpatialObject>) {
    let spec = WorkloadSpec::default()
        .with_total_objects(30_000)
        .with_silos(4)
        .with_seed(seed);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .lsr_seed(99)
        .silo_threads(threads)
        .build(dataset.into_partitions());
    (fed, all)
}

/// Asserts two aggregates are bit-for-bit equal (not just `==`, which
/// would accept `-0.0 == 0.0` and hide a reduction-order change).
fn assert_bits(a: &Aggregate, b: &Aggregate, what: &str) {
    assert_eq!(a.count.to_bits(), b.count.to_bits(), "{what}: count");
    assert_eq!(a.sum.to_bits(), b.sum.to_bits(), "{what}: sum");
    assert_eq!(a.sum_sqr.to_bits(), b.sum_sqr.to_bits(), "{what}: sum_sqr");
}

#[test]
fn grids_and_prefixes_are_bit_identical_across_pool_sizes() {
    let (reference, _) = build_federation(POOL_SIZES[0], 17);
    for &threads in &POOL_SIZES[1..] {
        let (fed, _) = build_federation(threads, 17);
        assert_eq!(fed.num_silos(), reference.num_silos());

        // Merged grid g_0, cell by cell.
        let spec = *reference.merged_grid().spec();
        assert_eq!(fed.merged_grid().spec(), &spec);
        for (i, (a, b)) in reference
            .merged_grid()
            .cells()
            .iter()
            .zip(fed.merged_grid().cells())
            .enumerate()
        {
            assert_bits(a, b, &format!("merged cell {i} (threads {threads})"));
        }

        // Per-silo grids and both prefix-sum layers.
        for k in 0..reference.num_silos() {
            for (i, (a, b)) in reference
                .silo_grid(k)
                .cells()
                .iter()
                .zip(fed.silo_grid(k).cells())
                .enumerate()
            {
                assert_bits(a, b, &format!("silo {k} cell {i} (threads {threads})"));
            }
            let full = reference
                .silo_prefix(k)
                .rect_sum(0, 0, spec.nx() - 1, spec.ny() - 1);
            let got = fed
                .silo_prefix(k)
                .rect_sum(0, 0, spec.nx() - 1, spec.ny() - 1);
            assert_bits(&full, &got, &format!("silo {k} prefix (threads {threads})"));
        }
        for (ix0, iy0, ix1, iy1) in [
            (0, 0, spec.nx() - 1, spec.ny() - 1),
            (1, 1, spec.nx() / 2, spec.ny() / 2),
            (spec.nx() / 3, 0, spec.nx() - 1, spec.ny() / 3),
        ] {
            let a = reference.merged_prefix().rect_sum(ix0, iy0, ix1, iy1);
            let b = fed.merged_prefix().rect_sum(ix0, iy0, ix1, iy1);
            assert_bits(&a, &b, &format!("merged prefix rect (threads {threads})"));
        }
    }
}

#[test]
fn pyramid_builds_are_bit_identical_across_pool_sizes() {
    // The grid pyramid coarsens on the same worker pool; every level of
    // the provider's merged pyramid must be bit-identical whether silos
    // (and the provider merge) ran on 1 worker or 4.
    let (reference, _) = build_federation(POOL_SIZES[0], 17);
    for &threads in &POOL_SIZES[1..] {
        let (fed, _) = build_federation(threads, 17);
        let a = reference.merged_pyramid();
        let b = fed.merged_pyramid();
        assert_eq!(a.num_levels(), b.num_levels(), "level count");
        for l in 1..=a.num_levels() {
            let (la, lb) = (a.level(l), b.level(l));
            assert_eq!(
                (la.nx(), la.ny(), la.factor()),
                (lb.nx(), lb.ny(), lb.factor())
            );
            // Full-plane sum plus a quadrant per level: cheap probes that
            // any reduction-order change in the 2×2 merges would flip.
            let full_a = a.rect_sum(l, 0, 0, la.nx() - 1, la.ny() - 1);
            let full_b = b.rect_sum(l, 0, 0, lb.nx() - 1, lb.ny() - 1);
            assert_bits(&full_a, &full_b, &format!("L{l} full (threads {threads})"));
            let quad_a = a.rect_sum(l, 0, 0, la.nx() / 2, la.ny() / 2);
            let quad_b = b.rect_sum(l, 0, 0, lb.nx() / 2, lb.ny() / 2);
            assert_bits(
                &quad_a,
                &quad_b,
                &format!("L{l} quadrant (threads {threads})"),
            );
            // And cell-by-cell, the decisive check.
            for (i, (ca, cb)) in la.cells().iter().zip(lb.cells().iter()).enumerate() {
                assert_bits(ca, cb, &format!("L{l} cell {i} (threads {threads})"));
            }
        }
    }
}

#[test]
fn pyramid_interior_sums_match_level_zero_exactly() {
    // Property: for level-aligned rectangles, a level-k rect_sum is
    // bit-identical to the same region summed on the base prefix grid —
    // coarsening must lose nothing on COUNT/SUM/SUM_SQR.
    let (fed, _) = build_federation(2, 17);
    let pyramid = fed.merged_pyramid();
    let base = fed.merged_prefix();
    let spec = *fed.merged_grid().spec();
    for l in 1..=pyramid.num_levels() {
        let level = pyramid.level(l);
        let factor = level.factor();
        for (cx0, cy0, cx1, cy1) in [
            (0, 0, level.nx() - 1, level.ny() - 1),
            (0, 0, level.nx() / 2, level.ny() / 2),
            (
                level.nx() / 3,
                level.ny() / 4,
                level.nx() - 1,
                level.ny() / 2,
            ),
        ] {
            let coarse = pyramid.rect_sum(l, cx0, cy0, cx1, cy1);
            // The same region in base cells: [cx0*f, (cx1+1)*f - 1], clamped.
            let fine = base.rect_sum(
                cx0 * factor,
                cy0 * factor,
                ((cx1 + 1) * factor - 1).min(spec.nx() - 1),
                ((cy1 + 1) * factor - 1).min(spec.ny() - 1),
            );
            assert_bits(
                &coarse,
                &fine,
                &format!("L{l} aligned rect ({cx0},{cy0})-({cx1},{cy1})"),
            );
        }
    }
}

#[test]
fn every_algorithm_and_agg_func_is_bit_identical_across_pool_sizes() {
    // One run per pool size: same seeds everywhere, so the only variable
    // is the worker count.
    let run = |threads: usize| -> Vec<u64> {
        let (fed, all) = build_federation(threads, 23);
        let params = AccuracyParams::default();
        let mut generator = QueryGenerator::new(&all, 31);
        let funcs = [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::SumSqr,
            AggFunc::Avg,
            AggFunc::Stdev,
        ];
        let mut queries: Vec<FraQuery> = Vec::new();
        for range in generator.circles(2.0, 6) {
            for func in funcs {
                queries.push(FraQuery::new(range, func));
            }
        }
        // Rectangular ranges exercise the prefix-grid fast path.
        queries.push(FraQuery::rect(
            Point::new(-3.0, -3.0),
            Point::new(3.0, 3.0),
            AggFunc::Count,
        ));
        queries.push(FraQuery::rect(
            Point::new(-1.0, -4.0),
            Point::new(5.0, 2.0),
            AggFunc::Sum,
        ));

        let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
            Box::new(Exact::new()),
            Box::new(Opta::new()),
            Box::new(IidEst::new(4)),
            Box::new(IidEstLsr::new(5, params)),
            Box::new(NonIidEst::new(6)),
            Box::new(NonIidEstLsr::new(7, params)),
        ];
        let mut bits = Vec::new();
        for alg in &algorithms {
            for q in &queries {
                bits.push(alg.execute(&fed, q).value.to_bits());
            }
        }
        bits
    };

    let reference = run(POOL_SIZES[0]);
    for &threads in &POOL_SIZES[1..] {
        assert_eq!(
            run(threads),
            reference,
            "query answers diverged at {threads} worker(s)"
        );
    }
}

#[test]
fn batch_engine_results_are_bit_identical_across_pool_sizes() {
    // The Alg. 4 engine's non-planning pool path (`execute_batch` over a
    // planless algorithm) must answer in input order regardless of how
    // many engine workers race over the batch.
    let (fed, all) = build_federation(1, 29);
    let mut generator = QueryGenerator::new(&all, 37);
    let queries: Vec<FraQuery> = generator
        .circles(1.5, 12)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Sum))
        .collect();
    let exact = Exact::new();
    let run = |workers: usize| -> Vec<u64> {
        QueryEngine::with_workers(&exact, workers)
            .execute_batch_singleton(&fed, &queries)
            .results
            .iter()
            .map(|r| r.as_ref().expect("healthy batch").value.to_bits())
            .collect()
    };
    let reference = run(1);
    for workers in [2, 4, 8] {
        assert_eq!(run(workers), reference, "engine diverged at {workers}");
    }
}

#[test]
fn warm_start_is_bit_identical_across_pool_sizes() {
    // The provider-side pool also materializes warm-start grids; a warm
    // rebuild must hit every silo and reproduce the cold grids exactly.
    let (cold, _) = build_federation(1, 41);
    let snapshot = cold.snapshot();
    for &threads in &POOL_SIZES {
        let spec = WorkloadSpec::default()
            .with_total_objects(30_000)
            .with_silos(4)
            .with_seed(41);
        let dataset = spec.generate();
        let warm = FederationBuilder::new(dataset.bounds())
            .grid_cell_len(1.0)
            .lsr_seed(99)
            .silo_threads(threads)
            .warm_start(snapshot.clone())
            .build(dataset.into_partitions());
        assert_eq!(warm.warm_start_hits(), warm.num_silos());
        for (i, (a, b)) in cold
            .merged_grid()
            .cells()
            .iter()
            .zip(warm.merged_grid().cells())
            .enumerate()
        {
            assert_bits(a, b, &format!("warm merged cell {i} (threads {threads})"));
        }
    }
}
