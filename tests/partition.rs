//! Partition-tolerance soak (DESIGN.md §5i): a federation of socket
//! silos behind seeded [`ChaosProxy`]s must survive hard partitions,
//! silo crashes, and stale-epoch replies — answering with *honest*
//! coverage records whose inflated ε bound is never violated, recovering
//! to bit-identical full answers once the network heals, and leaving no
//! breaker stuck half-open.
//!
//! Four contracts are pinned here:
//!
//! * **Invisibility**: under `DegradePolicy::FailFast` with calm (fault-
//!   free) proxies, answers and payload byte accounting are bit-identical
//!   to the in-memory backend on the same partitions.
//! * **Honesty**: under `DegradePolicy::Partial`, every answer that
//!   carries a [`Coverage`] record satisfies
//!   `|answer − truth| ≤ ε′ · sum₀(R)` — zero violations across the soak.
//! * **Recovery**: a crashed silo respawned from its checksummed grid
//!   snapshot rejoins (breaker probe → Closed) and the federation's
//!   answers return to the healthy-path bits; `non_closed()` is empty at
//!   soak end ("breaker leaks: 0").
//! * **Fencing**: a reply that crosses a connection drop is discarded by
//!   epoch (`fedra_epoch_fenced_replies_total` > 0), never delivered to
//!   a fresh call.

use std::time::Duration;

use fedra::core::helpers;
use fedra::federation::protocol::{Request, Response};
use fedra::prelude::*;

/// Unique scratch directory per test (sockets + snapshots).
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fedra-part-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const LSR_SEED: u64 = 0xF00D;
const CELL_LEN: f64 = 1.0;

fn dataset(seed: u64, silos: usize) -> fedra::workload::Dataset {
    WorkloadSpec::default()
        .with_total_objects(9_000)
        .with_silos(silos)
        .with_seed(seed)
        .generate()
}

fn silo_config(bounds: Rect) -> SiloConfig {
    SiloConfig {
        rtree: Default::default(),
        histogram: Default::default(),
        bounds,
        lsr_seed: LSR_SEED,
        threads: 1,
    }
}

/// Servers + calm proxies for every partition; returns (servers, proxies).
fn spawn_proxied_silos(
    dataset: &fedra::workload::Dataset,
    dir: &std::path::Path,
) -> (Vec<SiloSocketServer>, Vec<ChaosProxy>) {
    let bounds = dataset.bounds();
    let mut servers = Vec::new();
    let mut proxies = Vec::new();
    for (k, objects) in dataset.partitions().iter().enumerate() {
        let silo = Silo::new(k, objects.clone(), silo_config(bounds));
        let addr = SiloAddr::Unix(dir.join(format!("silo-{k}.sock")));
        let server = SiloSocketServer::spawn(silo, &addr, SocketServerConfig::default())
            .expect("spawn server");
        let proxy = ChaosProxy::spawn(server.addr(), ChaosPlan::calm(0x50A0 + k as u64))
            .expect("spawn proxy");
        servers.push(server);
        proxies.push(proxy);
    }
    (servers, proxies)
}

fn remote_builder(bounds: Rect, proxies: &[ChaosProxy]) -> FederationBuilder {
    let mut builder = FederationBuilder::new(bounds)
        .grid_cell_len(CELL_LEN)
        .lsr_seed(LSR_SEED);
    for proxy in proxies {
        builder = builder.connect_remote(proxy.addr().to_string());
    }
    builder
}

fn count_queries(all: &[SpatialObject], n: usize, seed: u64) -> Vec<FraQuery> {
    QueryGenerator::new(all, seed)
        .circles(2.0, n)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect()
}

/// The degraded-answer contract: `|answer − truth| ≤ ε′·sum₀(R)`, with
/// `sum₀` read from the healthy local twin.
fn assert_bound(twin: &Federation, q: &FraQuery, r: &QueryResult, truth: f64, label: &str) {
    let Some(cov) = r.coverage else { return };
    assert!(cov.responding <= cov.total, "{label}: {cov:?}");
    assert!(
        (0.0..=1.0).contains(&cov.mass_fraction) && (0.0..=1.0).contains(&cov.epsilon),
        "{label}: {cov:?}"
    );
    let sum0 = helpers::sum0(twin, &q.range).count;
    let miss = (r.value - truth).abs();
    assert!(
        miss <= cov.epsilon * sum0 + 1e-9,
        "{label}: |{} - {truth}| = {miss} exceeds eps {} * sum0 {sum0}",
        r.value,
        cov.epsilon
    );
}

// ---------------------------------------------------------------------
// Invisibility: FailFast + calm proxies == in-memory backend
// ---------------------------------------------------------------------

#[test]
fn failfast_through_calm_proxies_matches_the_in_memory_backend() {
    let dir = scratch("calm");
    let data = dataset(0xAB5E, 3);
    let all = data.all_objects();
    let queries = count_queries(&all, 40, 11);

    let twin = FederationBuilder::new(data.bounds())
        .grid_cell_len(CELL_LEN)
        .lsr_seed(LSR_SEED)
        .transport_backend(TransportBackend::InMemory)
        .build(data.partitions().to_vec());

    let (servers, proxies) = spawn_proxied_silos(&data, &dir);
    let fed = remote_builder(data.bounds(), &proxies).build(vec![]);
    assert_eq!(fed.num_silos(), 3);

    // EXACT and the NonIID estimator, bit for bit, plus identical payload
    // byte accounting — the proxy and the socket hop must be invisible.
    twin.reset_query_comm();
    fed.reset_query_comm();
    let exact = Exact::new();
    for q in &queries {
        let reference = exact.execute(&twin, q);
        let got = exact.execute(&fed, q);
        assert_eq!(got.value.to_bits(), reference.value.to_bits());
        assert!(got.coverage.is_none(), "FailFast must never annotate");
    }
    let est_twin = NonIidEst::new(41);
    let est_fed = NonIidEst::new(41);
    for q in &queries {
        let reference = est_twin.execute(&twin, q);
        let got = est_fed.execute(&fed, q);
        assert_eq!(got.value.to_bits(), reference.value.to_bits());
        assert_eq!(got.sampled_silo, reference.sampled_silo, "candidate order");
    }
    let (t, f) = (twin.query_comm(), fed.query_comm());
    assert_eq!(f.bytes_up, t.bytes_up);
    assert_eq!(f.bytes_down, t.bytes_down);
    assert_eq!(f.rounds, t.rounds);

    drop(fed);
    for mut p in proxies {
        p.stop();
    }
    for s in &servers {
        s.stop();
    }
}

// ---------------------------------------------------------------------
// Honesty + recovery: hard partition mid-soak, heal, breaker leaks: 0
// ---------------------------------------------------------------------

#[test]
fn partitioned_silo_degrades_honestly_and_rejoins_after_heal() {
    let dir = scratch("soak");
    let data = dataset(0x50AC, 3);
    let all = data.all_objects();
    let queries = count_queries(&all, 30, 23);

    let twin = FederationBuilder::new(data.bounds())
        .grid_cell_len(CELL_LEN)
        .lsr_seed(LSR_SEED)
        .transport_backend(TransportBackend::InMemory)
        .build(data.partitions().to_vec());
    let exact_truths: Vec<f64> = queries
        .iter()
        .map(|q| Exact::new().execute(&twin, q).value)
        .collect();

    let (servers, proxies) = spawn_proxied_silos(&data, &dir);
    let fed = remote_builder(data.bounds(), &proxies)
        .degrade_policy(DegradePolicy::Partial {
            min_silos: 1,
            min_coverage: 0.2,
        })
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_secs(5)),
            ..Default::default()
        })
        .health_config(HealthConfig::enabled())
        .build(vec![]);

    // Healthy phase: full answers, no coverage annotation even under
    // Partial (the policy only kicks in when silos are missing).
    let exact = Exact::new();
    for (q, truth) in queries.iter().zip(&exact_truths) {
        let r = exact.try_execute(&fed, q).expect("healthy");
        assert_eq!(r.value.to_bits(), truth.to_bits());
        assert!(r.coverage.is_none());
    }

    // Hard-partition silo 2 and soak. EXACT degrades to a coverage-
    // annotated answer (grid fill-in for the missing silo); the estimator
    // resamples around the dead silo and, when stranded, degrades to the
    // provider grid — every coverage record must honor its own ε′.
    proxies[2].partition_for(Duration::from_secs(600));
    let obs = ObsContext::new();
    let est = NonIidEst::new(41);
    let mut degraded = 0u32;
    for (q, truth) in queries.iter().zip(&exact_truths) {
        match exact.try_execute_with(&fed, q, &obs) {
            Ok(r) => {
                if r.coverage.is_some() {
                    degraded += 1;
                }
                assert_bound(&twin, q, &r, *truth, "EXACT under partition");
            }
            Err(e) => panic!("EXACT must degrade, not fail, under Partial: {e}"),
        }
        if let Ok(r) = est.try_execute_with(&fed, q, &obs) {
            assert_bound(&twin, q, &r, *truth, "NonIID under partition");
        }
    }
    assert!(degraded > 0, "the partition never surfaced in coverage");
    let snap = obs.snapshot();
    let noted = snap
        .counters
        .get("fedra_degraded_answers_total")
        .copied()
        .unwrap_or(0);
    assert!(noted >= u64::from(degraded), "coverage metric undercounts");
    assert!(
        snap.gauges.contains_key("fedra_coverage_ppm"),
        "degraded answers must export their mass fraction"
    );
    assert_eq!(
        fed.health().non_closed(),
        vec![2],
        "the partitioned silo's breaker must open"
    );

    // Heal. The next EXACT fan-outs reach silo 2 again; the estimator's
    // candidate checks admit a half-open probe whose success closes the
    // breaker. Loop (bounded) until the breaker state drains.
    proxies[2].partition_for(Duration::ZERO);
    let mut healed = false;
    for round in 0..400 {
        let q = &queries[round % queries.len()];
        let _ = est.try_execute(&fed, q);
        if fed.health().non_closed().is_empty() {
            healed = true;
            break;
        }
    }
    assert!(healed, "breaker leak: {:?}", fed.health().non_closed());
    // Back to bit-identical full answers.
    for (q, truth) in queries.iter().zip(&exact_truths) {
        let r = exact.try_execute(&fed, q).expect("healed");
        assert_eq!(r.value.to_bits(), truth.to_bits());
        assert!(r.coverage.is_none(), "healed answers carry no coverage");
    }

    drop(fed);
    for mut p in proxies {
        p.stop();
    }
    for s in &servers {
        s.stop();
    }
}

// ---------------------------------------------------------------------
// Crash recovery: SIGKILL-equivalent stop, respawn from grid snapshot
// ---------------------------------------------------------------------

#[test]
fn crashed_silo_rejoins_from_its_grid_snapshot() {
    let dir = scratch("crash");
    let data = dataset(0xC8A5, 2);
    let all = data.all_objects();
    let queries = count_queries(&all, 15, 31);
    let bounds = data.bounds();

    let twin = FederationBuilder::new(bounds)
        .grid_cell_len(CELL_LEN)
        .lsr_seed(LSR_SEED)
        .transport_backend(TransportBackend::InMemory)
        .build(data.partitions().to_vec());
    let truths: Vec<f64> = queries
        .iter()
        .map(|q| Exact::new().execute(&twin, q).value)
        .collect();

    // Silo 1 serves directly (no proxy) with snapshot persistence.
    let addr0 = SiloAddr::Unix(dir.join("silo-0.sock"));
    let addr1 = SiloAddr::Unix(dir.join("silo-1.sock"));
    let snapshot1 = dir.join("silo-1.grid");
    let server0 = SiloSocketServer::spawn(
        Silo::new(0, data.partitions()[0].clone(), silo_config(bounds)),
        &addr0,
        SocketServerConfig::default(),
    )
    .expect("silo 0");
    let server1 = SiloSocketServer::spawn(
        Silo::new(1, data.partitions()[1].clone(), silo_config(bounds)),
        &addr1,
        SocketServerConfig {
            snapshot_path: Some(snapshot1.clone()),
            ..Default::default()
        },
    )
    .expect("silo 1");

    let fed = FederationBuilder::new(bounds)
        .grid_cell_len(CELL_LEN)
        .lsr_seed(LSR_SEED)
        .connect_remote(addr0.to_string())
        .connect_remote(addr1.to_string())
        .degrade_policy(DegradePolicy::Partial {
            min_silos: 1,
            min_coverage: 0.2,
        })
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_secs(5)),
            ..Default::default()
        })
        .reconnect_policy(ReconnectPolicy {
            attempts: ReconnectAttempts::Limited(2),
            ..Default::default()
        })
        .build(vec![]);

    // Setup's BuildGrid persisted silo 1's grid.
    assert!(snapshot1.exists(), "BuildGrid must write the snapshot");

    let exact = Exact::new();
    for (q, truth) in queries.iter().zip(&truths) {
        let r = exact.try_execute(&fed, q).expect("healthy");
        assert_eq!(r.value.to_bits(), truth.to_bits());
    }

    // Crash silo 1: stop severs every live connection at its next frame
    // and refuses reconnects once the listener drops (the in-process
    // stand-in for SIGKILL; ci.sh kills a real fedra-silo process).
    server1.stop();
    drop(server1);
    let mut saw_degraded = false;
    for (q, truth) in queries.iter().zip(&truths) {
        let r = exact
            .try_execute(&fed, q)
            .expect("Partial answers through the crash");
        if let Some(cov) = r.coverage {
            saw_degraded = true;
            assert_eq!(cov.responding, 1);
            assert_eq!(cov.total, 2);
            assert_bound(&twin, q, &r, *truth, "EXACT through crash");
        }
    }
    assert!(saw_degraded, "the crash never surfaced in coverage");

    // Respawn from the snapshot: a fresh Silo warm-starts from disk
    // (bit-identical grid, no re-binning) and the probe-on-send client
    // reconnects on the next call.
    let respawned = Silo::new(1, data.partitions()[1].clone(), silo_config(bounds));
    assert_eq!(
        respawned
            .load_grid_snapshot(&snapshot1)
            .expect("snapshot intact"),
        true,
        "the persisted snapshot must warm-start the respawn"
    );
    let server1b = SiloSocketServer::spawn(
        respawned,
        &addr1,
        SocketServerConfig {
            snapshot_path: Some(snapshot1.clone()),
            ..Default::default()
        },
    )
    .expect("respawn silo 1");

    // Recovery: answers return to the healthy-path bits, no coverage.
    let mut recovered = false;
    for _ in 0..50 {
        if let Ok(r) = exact.try_execute(&fed, &queries[0]) {
            if r.coverage.is_none() {
                recovered = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(recovered, "the respawned silo never rejoined");
    for (q, truth) in queries.iter().zip(&truths) {
        let r = exact.try_execute(&fed, q).expect("recovered");
        assert_eq!(r.value.to_bits(), truth.to_bits());
        assert!(r.coverage.is_none());
    }

    drop(fed);
    server0.stop();
    server1b.stop();
}

// ---------------------------------------------------------------------
// Epoch fencing end to end: a stale reply crosses a reconnect
// ---------------------------------------------------------------------

#[test]
fn stale_replies_across_reconnects_are_fenced_not_answered() {
    let dir = scratch("fence");
    let data = dataset(0xFE2C, 1);
    let bounds = data.bounds();
    let server = SiloSocketServer::spawn(
        Silo::new(0, data.partitions()[0].clone(), silo_config(bounds)),
        &SiloAddr::Unix(dir.join("silo-0.sock")),
        SocketServerConfig::default(),
    )
    .expect("server");
    let proxy = ChaosProxy::spawn(server.addr(), ChaosPlan::calm(99)).expect("proxy");

    let fed = FederationBuilder::new(bounds)
        .grid_cell_len(CELL_LEN)
        .lsr_seed(LSR_SEED)
        .connect_remote(proxy.addr().to_string())
        .degrade_policy(DegradePolicy::Partial {
            min_silos: 0,
            min_coverage: 0.0,
        })
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_secs(5)),
            ..Default::default()
        })
        .build(vec![]);

    let fenced = |fed: &Federation| {
        fed.silo_metrics(0)
            .snapshot()
            .counters
            .get("fedra_epoch_fenced_replies_total")
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(fed.call(0, &Request::Ping), Ok(Response::Pong));
    assert_eq!(fenced(&fed), 0);

    // The proxy forwards the next request upstream but severs the client
    // first: the reply comes back on the persistent upstream connection
    // and is delivered to the RECONNECTED client — stamped with the dead
    // connection's epoch, so the reader must fence it.
    proxy.drop_client_after_next_request();
    let mut fenced_seen = 0;
    for _ in 0..50 {
        let _ = fed.call(0, &Request::Ping);
        fenced_seen = fenced(&fed);
        if fenced_seen > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(fenced_seen > 0, "the stale-epoch reply was never fenced");
    // The channel still answers correctly after fencing.
    let pong = fed.call(0, &Request::Ping).expect("post-fence call");
    assert_eq!(pong, Response::Pong);

    drop(fed);
    let mut proxy = proxy;
    proxy.stop();
    server.stop();
}
