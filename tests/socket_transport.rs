//! Socket-backend edge cases (DESIGN.md §5h): wire-bytes parity with the
//! in-memory encoding for EVERY protocol variant, partial-read
//! reassembly, typed rejection of oversized length prefixes, and peer
//! disconnects surfacing as retryable transport errors.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fedra::federation::protocol::{LocalMode, Request, Response, SiloMemoryReport};
use fedra::federation::transport::socket::{
    read_reply_frame, read_request_frame, write_reply_frame, write_request_frame, FrameError,
    SiloDiagnostics, MAX_FRAME_PAYLOAD, REPLY_HEADER_LEN, REQUEST_HEADER_LEN,
};
use fedra::federation::transport::DEFAULT_MESSAGE_OVERHEAD;
use fedra::federation::wire::Wire;
use fedra::federation::{
    ChaosPlan, ChaosProxy, Silo, SiloAddr, SiloChannel, SiloConfig, SiloSocketServer,
    SocketServerConfig, SocketTransport, Transport,
};
use fedra::prelude::*;

// ---------------------------------------------------------------------
// Wire-bytes parity: every variant's socket payload IS its in-memory
// encoding
// ---------------------------------------------------------------------

fn sample_aggregate() -> Aggregate {
    Aggregate {
        count: 3.0,
        sum: 7.5,
        sum_sqr: 21.25,
    }
}

fn sample_rect() -> Rect {
    Rect::new(Point::new(-4.0, -2.0), Point::new(4.0, 2.0))
}

/// One instance of every [`Request`] variant. The match below has no
/// wildcard arm on purpose: adding a variant fails this test until the
/// sample list (and hence the parity pin) covers it.
fn all_requests() -> Vec<Request> {
    let samples = vec![
        Request::BuildGrid {
            bounds: sample_rect(),
            cell_len: 0.5,
            return_cells: true,
        },
        Request::Aggregate {
            range: Range::circle(Point::new(0.5, -0.5), 1.5),
            mode: LocalMode::Exact,
        },
        Request::CellContributions {
            range: Range::rect(Point::new(-4.0, -2.0), Point::new(4.0, 2.0)),
            cells: vec![0, 3, 7],
            mode: LocalMode::Lsr {
                epsilon: 0.1,
                delta: 0.01,
                sum0: 12.0,
            },
        },
        Request::HistogramEstimate {
            range: Range::circle(Point::new(1.0, 1.0), 2.0),
        },
        Request::MemoryReport,
        Request::Ping,
        Request::Batch(vec![Request::Ping, Request::MemoryReport]),
    ];
    for sample in &samples {
        match sample {
            Request::BuildGrid { .. }
            | Request::Aggregate { .. }
            | Request::CellContributions { .. }
            | Request::HistogramEstimate { .. }
            | Request::MemoryReport
            | Request::Ping
            | Request::Batch(_) => {}
        }
    }
    samples
}

/// One instance of every [`Response`] variant (no-wildcard match, same
/// exhaustiveness pin as [`all_requests`]).
fn all_responses() -> Vec<Response> {
    let samples = vec![
        Response::Grid {
            bounds: sample_rect(),
            cell_len: 0.5,
            cells: vec![sample_aggregate(), Aggregate::ZERO],
            outside: 2,
        },
        Response::GridAck {
            total: sample_aggregate(),
            outside: 1,
        },
        Response::Agg(sample_aggregate()),
        Response::AggVec(vec![sample_aggregate(), Aggregate::ZERO]),
        Response::Memory(SiloMemoryReport {
            rtree: 1,
            lsr_extra: 2,
            grid: 3,
            histogram: 4,
        }),
        Response::Pong,
        Response::Error("broken".into()),
        Response::Batch(vec![Response::Pong, Response::Error("sub".into())]),
        Response::Transient("flap window".into()),
        Response::DeadlineExceeded { late_by_us: 12345 },
    ];
    for sample in &samples {
        match sample {
            Response::Grid { .. }
            | Response::GridAck { .. }
            | Response::Agg(_)
            | Response::AggVec(_)
            | Response::Memory(_)
            | Response::Pong
            | Response::Error(_)
            | Response::Batch(_)
            | Response::Transient(_)
            | Response::DeadlineExceeded { .. } => {}
        }
    }
    samples
}

#[test]
fn request_frames_carry_the_in_memory_encoding_for_every_variant() {
    for request in all_requests() {
        let payload = request.to_bytes();
        let mut frame = Vec::new();
        write_request_frame(&mut frame, 9, 5, 777, &payload).expect("write");
        assert_eq!(
            &frame[REQUEST_HEADER_LEN..],
            payload.as_ref(),
            "socket payload differs from in-memory bytes for {request:?}"
        );
        let decoded = read_request_frame(&mut frame.as_slice()).expect("read");
        assert_eq!(decoded.corr, 9);
        assert_eq!(decoded.epoch, 5);
        assert_eq!(decoded.deadline_rel_us, 777);
        assert_eq!(
            Request::from_bytes(decoded.payload).expect("decode"),
            request
        );
    }
}

#[test]
fn reply_frames_carry_the_in_memory_encoding_for_every_variant() {
    for response in all_responses() {
        let payload = response.to_bytes();
        let mut frame = Vec::new();
        write_reply_frame(&mut frame, 4, 6, &payload).expect("write");
        assert_eq!(
            &frame[REPLY_HEADER_LEN..],
            payload.as_ref(),
            "socket payload differs from in-memory bytes for {response:?}"
        );
        let (corr, epoch, bytes) = read_reply_frame(&mut frame.as_slice()).expect("read");
        assert_eq!(corr, 4);
        assert_eq!(epoch, 6);
        assert_eq!(Response::from_bytes(bytes).expect("decode"), response);
    }
}

// ---------------------------------------------------------------------
// Partial reads
// ---------------------------------------------------------------------

/// A reader that yields ONE byte per `read()` call — the worst-case
/// fragmentation a socket can deliver.
struct Trickle<'a>(&'a [u8]);

impl Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.0.split_first() {
            Some((byte, rest)) if !buf.is_empty() => {
                buf[0] = *byte;
                self.0 = rest;
                Ok(1)
            }
            _ => Ok(0),
        }
    }
}

#[test]
fn frames_reassemble_from_single_byte_reads() {
    let first = Response::Agg(sample_aggregate()).to_bytes();
    let second = Response::Pong.to_bytes();
    let mut stream = Vec::new();
    write_reply_frame(&mut stream, 1, 7, &first).expect("write");
    write_reply_frame(&mut stream, 2, 7, &second).expect("write");
    let mut trickle = Trickle(&stream);
    assert_eq!(
        read_reply_frame(&mut trickle).expect("first"),
        (1, 7, first)
    );
    assert_eq!(
        read_reply_frame(&mut trickle).expect("second"),
        (2, 7, second)
    );
    // Clean EOF at the frame boundary, not a truncation error.
    assert_eq!(read_reply_frame(&mut trickle), Err(FrameError::Eof));
}

#[test]
fn truncation_mid_frame_is_not_a_clean_eof() {
    let payload = Response::Pong.to_bytes();
    let mut stream = Vec::new();
    write_reply_frame(&mut stream, 1, 0, &payload).expect("write");
    for cut in 1..stream.len() {
        let err = read_reply_frame(&mut Trickle(&stream[..cut])).expect_err("truncated");
        assert!(
            matches!(err, FrameError::Truncated { .. }),
            "cut at {cut} gave {err:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Oversized length prefixes: typed errors, never a panic or a huge
// allocation
// ---------------------------------------------------------------------

#[test]
fn oversized_reply_prefix_is_a_typed_error() {
    let mut bogus = Vec::new();
    bogus.extend_from_slice(&u32::MAX.to_le_bytes());
    bogus.extend_from_slice(&1u64.to_le_bytes()); // corr
    bogus.extend_from_slice(&0u64.to_le_bytes()); // epoch
    bogus.extend_from_slice(&0u64.to_le_bytes()); // checksum
    assert_eq!(
        read_reply_frame(&mut bogus.as_slice()),
        Err(FrameError::Oversized {
            len: u32::MAX as u64
        })
    );
}

/// A real server must drop a connection that announces an oversized
/// request instead of allocating for it or panicking — and keep serving
/// well-formed peers afterwards.
#[test]
fn server_drops_oversized_request_frames_and_survives() {
    let server = spawn_test_server();
    let addr = tcp_addr(server.addr());

    // Hostile peer: announces a payload over the cap.
    let mut hostile = TcpStream::connect(&addr).expect("connect");
    let mut bogus = Vec::new();
    bogus.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
    bogus.extend_from_slice(&0u64.to_le_bytes()); // corr
    bogus.extend_from_slice(&0u64.to_le_bytes()); // epoch
    bogus.extend_from_slice(&0u64.to_le_bytes()); // checksum
    bogus.extend_from_slice(&u64::MAX.to_le_bytes()); // no deadline
    hostile.write_all(&bogus).expect("write bogus header");
    // The server hangs up without replying.
    hostile
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut sink = Vec::new();
    let got = hostile.read_to_end(&mut sink).expect("read");
    assert_eq!(got, 0, "server must close, not answer, an oversized frame");

    // A well-formed peer on a fresh connection is still served.
    let mut honest = TcpStream::connect(&addr).expect("connect");
    write_request_frame(&mut honest, 1, 0, u64::MAX, &Request::Ping.to_bytes()).expect("write");
    let (corr, epoch, payload) = read_reply_frame(&mut honest).expect("reply");
    assert_eq!(corr, 1);
    assert_eq!(epoch, 0);
    assert_eq!(
        Response::from_bytes(payload).expect("decode"),
        Response::Pong
    );
}

// ---------------------------------------------------------------------
// Peer disconnects mid-call: retryable TransportError
// ---------------------------------------------------------------------

/// A fake silo that accepts, reads one request, and hangs up without
/// replying — then accepts the reconnect and keeps it open. The client
/// must surface the in-flight batch as a retryable transient, not hang
/// or panic.
#[test]
fn peer_disconnect_mid_batch_is_a_retryable_transport_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let fake_silo = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        // Read the batch request, then vanish mid-call.
        let _ = read_request_frame(&mut conn).expect("request");
        drop(conn);
        // Accept the reconnect so the client classifies the loss as
        // transient (peer alive) rather than a dead silo.
        let (reconnect, _) = listener.accept().expect("re-accept");
        std::thread::sleep(Duration::from_millis(200));
        drop(reconnect);
    });

    let stats = Arc::new(CommCounters::default());
    let transport = SocketTransport::connect(0, SiloAddr::Tcp(addr), SiloDiagnostics::remote())
        .expect("connect");
    let channel = SiloChannel::over(Arc::new(transport), stats);
    let pending = channel
        .begin_batch(&[&Request::Ping, &Request::Ping])
        .expect("begin");
    let err = pending
        .wait_deadline(Instant::now() + Duration::from_secs(10))
        .expect_err("the peer hung up mid-batch");
    assert!(
        matches!(err, TransportError::Transient { silo: 0, .. }),
        "expected a transient, got {err:?}"
    );
    assert!(err.is_retryable());
    fake_silo.join().expect("fake silo");
}

// ---------------------------------------------------------------------
// End-to-end: a real served silo answers identically over the socket
// ---------------------------------------------------------------------

fn spawn_test_server() -> SiloSocketServer {
    let objects: Vec<SpatialObject> = (0..50)
        .map(|i| SpatialObject::at(-4.0 + 0.16 * i as f64, -1.0 + 0.04 * i as f64, 1.0))
        .collect();
    let silo = Silo::new(
        0,
        objects,
        SiloConfig {
            rtree: Default::default(),
            histogram: Default::default(),
            bounds: sample_rect(),
            lsr_seed: 7,
            threads: 1,
        },
    );
    SiloSocketServer::spawn(
        silo,
        &SiloAddr::Tcp("127.0.0.1:0".into()),
        SocketServerConfig::default(),
    )
    .expect("spawn server")
}

fn tcp_addr(addr: &SiloAddr) -> String {
    match addr {
        SiloAddr::Tcp(a) => a.clone(),
        other => panic!("expected a TCP address, got {other}"),
    }
}

#[test]
fn served_silo_answers_and_counts_bytes_like_the_in_memory_backend() {
    let request = Request::Aggregate {
        range: Range::circle(Point::new(0.0, 0.0), 2.0),
        mode: LocalMode::Exact,
    };

    // In-memory reference: same silo data behind the default backend.
    let objects: Vec<SpatialObject> = (0..50)
        .map(|i| SpatialObject::at(-4.0 + 0.16 * i as f64, -1.0 + 0.04 * i as f64, 1.0))
        .collect();
    let reference = Silo::new(
        0,
        objects,
        SiloConfig {
            rtree: Default::default(),
            histogram: Default::default(),
            bounds: sample_rect(),
            lsr_seed: 7,
            threads: 1,
        },
    );
    let expected = reference.handle(request.clone());

    let server = spawn_test_server();
    let stats = Arc::new(CommCounters::default());
    let transport = SocketTransport::connect(0, server.addr().clone(), SiloDiagnostics::remote())
        .expect("connect");
    assert_eq!(transport.backend_name(), "socket");
    let channel = SiloChannel::over(Arc::new(transport), Arc::clone(&stats));
    let answer = channel.call(&request).expect("call");
    assert_eq!(answer, expected);
    // Byte accounting counts payload bytes exactly like the in-memory
    // backend: one round, up = request encoding, down = response encoding.
    let snapshot = stats.snapshot();
    assert_eq!(snapshot.rounds, 1);
    assert_eq!(
        snapshot.bytes_up,
        request.to_bytes().len() as u64 + DEFAULT_MESSAGE_OVERHEAD
    );
    assert_eq!(
        snapshot.bytes_down,
        expected.to_bytes().len() as u64 + DEFAULT_MESSAGE_OVERHEAD
    );
}

// ---------------------------------------------------------------------
// TCP loopback through the chaos proxy
// ---------------------------------------------------------------------

/// A disarmed (calm) proxy on the TCP loopback path must be invisible:
/// same answers, same payload byte accounting as a direct connection.
#[test]
fn calm_chaos_proxy_preserves_answers_and_byte_accounting() {
    let request = Request::Aggregate {
        range: Range::circle(Point::new(0.0, 0.0), 2.0),
        mode: LocalMode::Exact,
    };
    let server = spawn_test_server();
    let direct_stats = Arc::new(CommCounters::default());
    let direct = SocketTransport::connect(0, server.addr().clone(), SiloDiagnostics::remote())
        .expect("connect direct");
    let direct_channel = SiloChannel::over(Arc::new(direct), Arc::clone(&direct_stats));
    let expected = direct_channel.call(&request).expect("direct call");

    let proxy = ChaosProxy::spawn(server.addr(), ChaosPlan::calm(17)).expect("proxy");
    let proxied_stats = Arc::new(CommCounters::default());
    let proxied = SocketTransport::connect(0, proxy.addr().clone(), SiloDiagnostics::remote())
        .expect("connect via proxy");
    let proxied_channel = SiloChannel::over(Arc::new(proxied), Arc::clone(&proxied_stats));
    let answer = proxied_channel.call(&request).expect("proxied call");

    assert_eq!(answer, expected);
    assert_eq!(proxied_stats.snapshot(), direct_stats.snapshot());
    // The pump bumps replies_forwarded *after* the client-side write, so
    // the reply can be observed a beat before the counter — poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let stats = loop {
        let stats = proxy.stats();
        if stats.replies_forwarded == 1 || std::time::Instant::now() >= deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    assert_eq!(stats.replies_forwarded, 1);
    assert_eq!(
        stats.replies_corrupted + stats.replies_truncated + stats.replies_dropped,
        0,
        "a calm proxy must not inject anything"
    );
}

/// Corruption injected on the TCP path surfaces as a retryable transport
/// error and then a correct answer on the retried connection — never a
/// silently wrong aggregate.
#[test]
fn corrupted_reply_over_tcp_retries_to_a_correct_answer() {
    let request = Request::Aggregate {
        range: Range::circle(Point::new(0.0, 0.0), 2.0),
        mode: LocalMode::Exact,
    };
    let server = spawn_test_server();
    let direct = SocketTransport::connect(0, server.addr().clone(), SiloDiagnostics::remote())
        .expect("connect direct");
    let expected = SiloChannel::over(Arc::new(direct), Arc::new(CommCounters::default()))
        .call(&request)
        .expect("direct call");

    // Corrupt every 1-in-2 replies: each client call either fails typed
    // (and retries under the call policy) or answers correctly.
    let plan = ChaosPlan {
        corrupt_prob: 0.5,
        ..ChaosPlan::calm(23)
    };
    let proxy = ChaosProxy::spawn(server.addr(), plan).expect("proxy");
    let transport = SocketTransport::connect(0, proxy.addr().clone(), SiloDiagnostics::remote())
        .expect("connect via proxy");
    let channel = SiloChannel::over(Arc::new(transport), Arc::new(CommCounters::default()));
    let mut answered = 0;
    for _ in 0..12 {
        match channel.call(&request) {
            Ok(answer) => {
                assert_eq!(answer, expected, "a corrupted frame must never decode");
                answered += 1;
            }
            Err(e) => assert!(
                e.is_retryable() || matches!(e, TransportError::Disconnected { .. }),
                "corruption must surface typed, got {e:?}"
            ),
        }
    }
    assert!(answered > 0, "some calls must get through");
    assert!(
        proxy.stats().replies_corrupted > 0,
        "the plan must actually have injected corruption"
    );
}
