//! End-to-end integration: workload generation → federation setup →
//! all six algorithms → ground truth, across aggregation functions and
//! range shapes.

use fedra::prelude::*;

fn testbed(total: usize, silos: usize, seed: u64) -> (Federation, Vec<SpatialObject>) {
    let spec = WorkloadSpec::default()
        .with_total_objects(total)
        .with_silos(silos)
        .with_seed(seed);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    (federation, all)
}

fn brute(objects: &[SpatialObject], range: &Range) -> Aggregate {
    objects
        .iter()
        .filter(|o| range.contains_point(&o.location))
        .fold(Aggregate::ZERO, |acc, o| acc.merge(&Aggregate::of(o)))
}

#[test]
fn exact_matches_bruteforce_for_all_functions_and_shapes() {
    let (fed, all) = testbed(20_000, 3, 1);
    let ranges = [
        Range::circle(Point::new(0.0, -95.0), 2.0),
        Range::circle(Point::new(8.0, -88.0), 1.0),
        Range::rect(Point::new(-5.0, -100.0), Point::new(5.0, -90.0)),
    ];
    let exact = Exact::new();
    for range in &ranges {
        let oracle = brute(&all, range);
        for func in AggFunc::ALL {
            let r = exact.execute(&fed, &FraQuery::new(*range, func));
            assert!(
                (r.value - oracle.value(func)).abs() < 1e-9,
                "{func} over {range}: {} vs {}",
                r.value,
                oracle.value(func)
            );
        }
    }
}

#[test]
fn estimators_are_accurate_on_the_city_workload() {
    let (fed, all) = testbed(60_000, 6, 2);
    let mut generator = QueryGenerator::new(&all, 3);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 20)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();
    let exact = Exact::new();
    let truth: Vec<f64> = queries
        .iter()
        .map(|q| exact.execute(&fed, q).value)
        .collect();

    let params = AccuracyParams::default();
    let algorithms: Vec<(Box<dyn FraAlgorithm>, f64)> = vec![
        (Box::new(Opta::new()), 0.30),
        (Box::new(IidEst::new(4)), 0.30),
        (Box::new(IidEstLsr::new(5, params)), 0.35),
        (Box::new(NonIidEst::new(6)), 0.15),
        (Box::new(NonIidEstLsr::new(7, params)), 0.20),
    ];
    for (alg, limit) in &algorithms {
        let mut total = 0.0;
        for (q, &t) in queries.iter().zip(&truth) {
            let r = alg.execute(&fed, q);
            total += r.relative_error(t);
        }
        let mre = total / queries.len() as f64;
        assert!(mre < *limit, "{} MRE {mre} over limit {limit}", alg.name());
    }
}

#[test]
fn rounds_reflect_the_protocol() {
    let (fed, all) = testbed(20_000, 5, 8);
    let mut generator = QueryGenerator::new(&all, 9);
    let q = FraQuery::new(generator.circle(2.0), AggFunc::Count);

    fed.reset_query_comm();
    Exact::new().execute(&fed, &q);
    assert_eq!(fed.query_comm().rounds, 5, "EXACT talks to every silo");

    fed.reset_query_comm();
    Opta::new().execute(&fed, &q);
    assert_eq!(fed.query_comm().rounds, 5, "OPTA talks to every silo");

    fed.reset_query_comm();
    IidEst::new(10).execute(&fed, &q);
    assert_eq!(fed.query_comm().rounds, 1, "IID-est samples one silo");

    fed.reset_query_comm();
    NonIidEst::new(11).execute(&fed, &q);
    assert_eq!(fed.query_comm().rounds, 1, "NonIID-est samples one silo");
}

#[test]
fn communication_ordering_matches_the_paper() {
    // Per-query bytes: IID-est < NonIID-est < EXACT ≈ OPTA (with the
    // per-message envelope making fan-out O(m) visible).
    let (fed, all) = testbed(40_000, 6, 12);
    let mut generator = QueryGenerator::new(&all, 13);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 30)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();

    let comm_of = |alg: &dyn FraAlgorithm| {
        fed.reset_query_comm();
        for q in &queries {
            alg.execute(&fed, q);
        }
        fed.query_comm().total_bytes()
    };
    let exact = comm_of(&Exact::new());
    let opta = comm_of(&Opta::new());
    let iid = comm_of(&IidEst::new(14));
    let noniid = comm_of(&NonIidEst::new(15));

    assert!(
        iid < noniid,
        "IID O(1) vs NonIID O(sqrt(g0)): {iid} vs {noniid}"
    );
    assert!(
        noniid < exact,
        "NonIID must undercut EXACT: {noniid} vs {exact}"
    );
    assert!(
        noniid < opta,
        "NonIID must undercut OPTA: {noniid} vs {opta}"
    );
    assert!(
        exact as f64 / iid as f64 > 3.0,
        "fan-out premium should approach m: {exact} vs {iid}"
    );
}

#[test]
fn batch_engine_balances_load_and_preserves_answers() {
    let (fed, all) = testbed(30_000, 6, 16);
    let mut generator = QueryGenerator::new(&all, 17);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 120)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();

    let served_before = fed.served_per_silo();
    let alg = NonIidEst::new(18);
    let engine = QueryEngine::per_silo(&alg, &fed);
    let batch = engine.execute_batch(&fed, &queries);
    assert_eq!(batch.failures(), 0);
    assert!(batch.throughput_qps > 0.0);

    let served_after = fed.served_per_silo();
    let deltas: Vec<u64> = served_before
        .iter()
        .zip(&served_after)
        .map(|(b, a)| a - b)
        .collect();
    let expected = queries.len() as f64 / fed.num_silos() as f64;
    for (k, &d) in deltas.iter().enumerate() {
        assert!(
            (d as f64) < expected * 2.5 + 5.0,
            "silo {k} over-loaded: {d} of {} queries",
            queries.len()
        );
    }
}

#[test]
fn avg_and_stdev_agree_between_estimates_and_truth() {
    let (fed, all) = testbed(50_000, 4, 19);
    let mut generator = QueryGenerator::new(&all, 20);
    let exact = Exact::new();
    let noniid = NonIidEst::new(21);
    for range in generator.circles(2.5, 8) {
        for func in [AggFunc::Avg, AggFunc::Stdev] {
            let q = FraQuery::new(range, func);
            let t = exact.execute(&fed, &q).value;
            if t == 0.0 {
                continue;
            }
            let e = noniid.execute(&fed, &q).value;
            assert!(
                (e - t).abs() / t < 0.25,
                "{func} at {range}: est {e} vs exact {t}"
            );
        }
    }
}

#[test]
fn rect_ranges_work_across_all_algorithms() {
    let (fed, all) = testbed(30_000, 3, 22);
    let oracle = |r: &Range| brute(&all, r).count;
    let range = Range::rect(Point::new(-10.0, -105.0), Point::new(10.0, -85.0));
    let q = FraQuery::new(range, AggFunc::Count);
    let truth = oracle(&range);
    assert!(truth > 100.0, "test range too sparse: {truth}");

    let params = AccuracyParams::default();
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(23)),
        Box::new(IidEstLsr::new(24, params)),
        Box::new(NonIidEst::new(25)),
        Box::new(NonIidEstLsr::new(26, params)),
    ];
    for alg in &algorithms {
        let r = alg.execute(&fed, &q);
        assert!(
            r.relative_error(truth) < 0.3,
            "{} rect-range error too large: {} vs {truth}",
            alg.name(),
            r.value
        );
    }
}

#[test]
fn setup_comm_scales_with_grid_size_not_data() {
    let spec = WorkloadSpec::default()
        .with_total_objects(10_000)
        .with_silos(3)
        .with_seed(27);
    let dataset = spec.generate();
    let bounds = dataset.bounds();
    let coarse = FederationBuilder::new(bounds)
        .grid_cell_len(4.0)
        .build(dataset.partitions().to_vec());
    let fine = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    // 16× more cells → much more setup traffic, same data.
    assert!(
        fine.setup_comm().total_bytes() > 4 * coarse.setup_comm().total_bytes(),
        "fine {} vs coarse {}",
        fine.setup_comm().total_bytes(),
        coarse.setup_comm().total_bytes()
    );
}
