//! Property-based fuzzing of the wire protocol: arbitrary well-formed
//! messages must round-trip exactly, and arbitrary byte soup must never
//! panic the decoder (it errors instead).

use bytes::Bytes;
use fedra::federation::wire::Wire;
use fedra::federation::{LocalMode, Request, Response, SiloMemoryReport};
use fedra::geo::{Point, Range, Rect};
use fedra::index::Aggregate;
use proptest::prelude::*;

fn agg() -> impl Strategy<Value = Aggregate> {
    (any::<f64>(), any::<f64>(), any::<f64>()).prop_map(|(count, sum, sum_sqr)| Aggregate {
        count,
        sum,
        sum_sqr,
    })
}

fn range() -> impl Strategy<Value = Range> {
    prop_oneof![
        (-1e6f64..1e6, -1e6f64..1e6, 0.0f64..1e4)
            .prop_map(|(x, y, r)| Range::circle(Point::new(x, y), r)),
        (-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6)
            .prop_map(|(x0, y0, x1, y1)| Range::rect(Point::new(x0, y0), Point::new(x1, y1))),
    ]
}

fn mode() -> impl Strategy<Value = LocalMode> {
    prop_oneof![
        Just(LocalMode::Exact),
        (1e-6f64..10.0, 1e-6f64..0.999, 0.0f64..1e9).prop_map(|(epsilon, delta, sum0)| {
            LocalMode::Lsr {
                epsilon,
                delta,
                sum0,
            }
        }),
    ]
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (-1e5f64..1e5, -1e5f64..1e5, 1.0f64..100.0, any::<bool>()).prop_map(
            |(x, y, len, return_cells)| Request::BuildGrid {
                bounds: Rect::new(Point::new(x, y), Point::new(x + 10.0, y + 10.0)),
                cell_len: len,
                return_cells,
            }
        ),
        (range(), mode()).prop_map(|(range, mode)| Request::Aggregate { range, mode }),
        (
            range(),
            proptest::collection::vec(any::<u32>(), 0..64),
            mode()
        )
            .prop_map(|(range, cells, mode)| Request::CellContributions {
                range,
                cells,
                mode
            }),
        range().prop_map(|range| Request::HistogramEstimate { range }),
        Just(Request::MemoryReport),
        Just(Request::Ping),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        agg().prop_map(Response::Agg),
        proptest::collection::vec(agg(), 0..64).prop_map(Response::AggVec),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(rtree, lsr_extra, grid, histogram)| Response::Memory(SiloMemoryReport {
                rtree,
                lsr_extra,
                grid,
                histogram,
            })
        ),
        Just(Response::Pong),
        ".{0,120}".prop_map(Response::Error),
        ".{0,120}".prop_map(Response::Transient),
        any::<u64>().prop_map(|late_by_us| Response::DeadlineExceeded { late_by_us }),
    ]
}

/// One level of batching over arbitrary leaf requests (the legal shape:
/// silos reject nested batches at handling time, not the codec).
fn batch_request() -> impl Strategy<Value = Request> {
    proptest::collection::vec(request(), 0..12).prop_map(Request::Batch)
}

fn batch_response() -> impl Strategy<Value = Response> {
    proptest::collection::vec(response(), 0..12).prop_map(Response::Batch)
}

/// Bit-exact equality for aggregates (NaN-safe, unlike PartialEq).
fn agg_bits(a: &Aggregate) -> (u64, u64, u64) {
    (a.count.to_bits(), a.sum.to_bits(), a.sum_sqr.to_bits())
}

proptest! {
    #[test]
    fn requests_round_trip(req in request()) {
        let bytes = req.to_bytes();
        let back = Request::from_bytes(bytes).expect("well-formed request decodes");
        prop_assert_eq!(format!("{back:?}"), format!("{req:?}"));
    }

    #[test]
    fn responses_round_trip(resp in response()) {
        let bytes = resp.to_bytes();
        let back = Response::from_bytes(bytes).expect("well-formed response decodes");
        match (&back, &resp) {
            (Response::Agg(a), Response::Agg(b)) => prop_assert_eq!(agg_bits(a), agg_bits(b)),
            (Response::AggVec(a), Response::AggVec(b)) => {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    prop_assert_eq!(agg_bits(x), agg_bits(y));
                }
            }
            _ => prop_assert_eq!(format!("{back:?}"), format!("{resp:?}")),
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine except a panic.
        let _ = Request::from_bytes(Bytes::from(data.clone()));
        let _ = Response::from_bytes(Bytes::from(data));
    }

    #[test]
    fn truncation_is_always_detected(req in request(), cut in 0usize..64) {
        let bytes = req.to_bytes();
        if cut > 0 && cut < bytes.len() {
            let truncated = bytes.slice(0..bytes.len() - cut);
            // Truncated buffers must error (never silently succeed with
            // the same meaning... decoding may succeed only if it errors
            // on the trailing check, which slice removal prevents).
            prop_assert!(Request::from_bytes(truncated).is_err());
        }
    }

    #[test]
    fn batch_requests_round_trip(req in batch_request()) {
        let bytes = req.to_bytes();
        let back = Request::from_bytes(bytes).expect("well-formed batch decodes");
        prop_assert_eq!(format!("{back:?}"), format!("{req:?}"));
    }

    #[test]
    fn batch_responses_round_trip(resp in batch_response()) {
        let bytes = resp.to_bytes();
        let back = Response::from_bytes(bytes).expect("well-formed batch decodes");
        prop_assert_eq!(format!("{back:?}"), format!("{resp:?}"));
    }

    #[test]
    fn batch_truncation_is_always_detected(req in batch_request(), cut in 1usize..64) {
        let bytes = req.to_bytes();
        if cut < bytes.len() {
            prop_assert!(Request::from_bytes(bytes.slice(0..bytes.len() - cut)).is_err());
        }
    }

    #[test]
    fn encoded_len_is_exact_for_requests(req in prop_oneof![request(), batch_request()]) {
        prop_assert_eq!(req.encoded_len(), req.to_bytes().len());
    }

    #[test]
    fn encoded_len_is_exact_for_responses(resp in prop_oneof![response(), batch_response()]) {
        prop_assert_eq!(resp.encoded_len(), resp.to_bytes().len());
    }
}
