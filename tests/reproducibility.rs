//! Determinism guarantees: identical seeds must yield identical datasets,
//! federations, and (for seeded estimators) identical answers — the
//! property every experiment table in EXPERIMENTS.md relies on.

use fedra::prelude::*;

#[test]
fn datasets_are_bit_identical_per_seed() {
    let a = WorkloadSpec::small().with_seed(7).generate();
    let b = WorkloadSpec::small().with_seed(7).generate();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.all_objects().iter().zip(b.all_objects().iter()) {
        assert_eq!(x.location.x.to_bits(), y.location.x.to_bits());
        assert_eq!(x.location.y.to_bits(), y.location.y.to_bits());
        assert_eq!(x.measure.to_bits(), y.measure.to_bits());
    }
}

#[test]
fn estimator_answers_are_deterministic_per_seed() {
    let spec = WorkloadSpec::default()
        .with_total_objects(20_000)
        .with_silos(4)
        .with_seed(11);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .lsr_seed(99)
        .build(dataset.into_partitions());
    let mut generator = QueryGenerator::new(&all, 12);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 10)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();

    // Two instances with the same sampling seed walk the same silos.
    let run = |seed: u64| -> Vec<f64> {
        let alg = NonIidEst::new(seed);
        queries.iter().map(|q| alg.execute(&fed, q).value).collect()
    };
    assert_eq!(run(42), run(42));
    // Different seeds are allowed to differ (they sample other silos).
    let other = run(43);
    let same = run(42);
    assert!(
        same.iter().zip(&other).any(|(a, b)| a != b) || fed.num_silos() == 1,
        "different sampling seeds should usually pick different silos"
    );
}

#[test]
fn federation_rebuild_reproduces_grid_state() {
    let spec = WorkloadSpec::small().with_seed(13);
    let d1 = spec.generate();
    let d2 = spec.generate();
    let f1 = FederationBuilder::new(d1.bounds())
        .grid_cell_len(2.0)
        .build(d1.into_partitions());
    let f2 = FederationBuilder::new(d2.bounds())
        .grid_cell_len(2.0)
        .build(d2.into_partitions());
    let spec1 = *f1.merged_grid().spec();
    for id in 0..spec1.num_cells() as u32 {
        assert_eq!(
            f1.merged_grid().cell(id).count,
            f2.merged_grid().cell(id).count,
            "cell {id} diverged between identical builds"
        );
    }
    assert_eq!(
        f1.setup_comm().total_bytes(),
        f2.setup_comm().total_bytes(),
        "setup traffic must be deterministic"
    );
}

#[test]
fn lsr_forests_reproduce_per_seed() {
    // Same lsr_seed → identical LSR answers from the same silo.
    let spec = WorkloadSpec::default()
        .with_total_objects(15_000)
        .with_silos(3)
        .with_seed(14);
    let build = || {
        let dataset = spec.generate();
        FederationBuilder::new(dataset.bounds())
            .grid_cell_len(1.0)
            .lsr_seed(1234)
            .build(dataset.into_partitions())
    };
    let f1 = build();
    let f2 = build();
    let q = FraQuery::circle(Point::new(0.0, -95.0), 2.0, AggFunc::Count);
    use fedra::federation::{LocalMode, Request, Response};
    let ask = |fed: &Federation| match fed
        .call(
            0,
            &Request::Aggregate {
                range: q.range,
                mode: LocalMode::Lsr {
                    epsilon: 0.2,
                    delta: 0.01,
                    sum0: 10_000.0,
                },
            },
        )
        .unwrap()
    {
        Response::Agg(a) => a.count,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(ask(&f1), ask(&f2));
}
