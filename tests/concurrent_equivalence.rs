//! Scheduler equivalence: answers served concurrently must be
//! **bit-identical** to serial execution of the same `(query, seed)`.
//!
//! The scheduler (DESIGN.md §5g) coalesces outstanding silo requests
//! from many clients' queries into shared wire frames, retries and
//! resamples per rider, and finishes answers on a worker pool — none of
//! which may leak into a query's value. These tests pin that contract
//! through the public `fedra` API: K client threads race submissions in
//! scrambled order, and every answer has to match what a one-worker
//! `QueryEngine` produces for the same query under the same seed.
//!
//! `ci.sh` runs this suite under `FEDRA_SILO_THREADS={1,4}`; the builds
//! below auto-size their pools, so the override steers silo-side *and*
//! scheduler-side parallelism. The fault-plan test arms latency-only
//! injection, which perturbs timing and frame composition but must
//! never perturb bits.

use std::sync::Arc;
use std::time::Duration;

use fedra::prelude::*;

const CLIENTS: usize = 8;

fn stand_up(seed: u64, faults: Option<FaultPlan>) -> (Arc<Federation>, Vec<FraQuery>) {
    let spec = WorkloadSpec::default()
        .with_total_objects(12_000)
        .with_silos(4)
        .with_seed(seed);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let mut builder = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .lsr_seed(seed ^ 0x15AF);
    if let Some(plan) = faults {
        builder = builder.fault_plan(plan);
    }
    let federation = Arc::new(builder.build(dataset.into_partitions()));
    let mut generator = QueryGenerator::new(&all, seed ^ 0x5EED);
    let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Avg];
    let queries = generator
        .circles(2.0, 96)
        .iter()
        .enumerate()
        .map(|(i, r)| FraQuery::new(*r, funcs[i % funcs.len()]))
        .collect();
    (federation, queries)
}

fn query_seed(i: usize) -> u64 {
    0xC0_5EED ^ (i as u64).wrapping_mul(0x9E37_79B9)
}

/// Serial ground truth: a fresh one-worker engine per query, same seed.
fn serial_reference(
    federation: &Federation,
    queries: &[FraQuery],
    factory: &dyn Fn(u64) -> Box<dyn FraAlgorithm>,
) -> Vec<QueryResult> {
    queries
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let alg = factory(query_seed(i));
            let batch = QueryEngine::with_workers(alg.as_ref(), 1).execute_batch_with(
                federation,
                &queries[i..=i],
                &ObsContext::new(),
            );
            *batch.results[0].as_ref().expect("serial query answers")
        })
        .collect()
}

/// Drives `queries` through a scheduler with K racing client threads and
/// returns the answers in submission-index order.
fn concurrent_run(
    federation: &Arc<Federation>,
    queries: &[FraQuery],
    factory: impl Fn(u64) -> Box<dyn FraAlgorithm> + Send + Sync + 'static,
) -> Vec<QueryResult> {
    let sched = Arc::new(QueryScheduler::start(
        Arc::clone(federation),
        factory,
        SchedulerConfig::default(),
        Arc::new(ObsContext::new()),
    ));
    let mut results: Vec<Option<QueryResult>> = vec![None; queries.len()];
    let mut slots: Vec<(usize, &mut Option<QueryResult>)> =
        results.iter_mut().enumerate().collect();
    std::thread::scope(|scope| {
        // Client c owns every c-th query: interleaved ownership keeps all
        // clients submitting concurrently over the whole index range, so
        // frames coalesce riders from many clients.
        for (client, chunk) in chunks_by_stride(&mut slots, CLIENTS)
            .into_iter()
            .enumerate()
        {
            let sched = Arc::clone(&sched);
            scope.spawn(move || {
                let _ = client;
                for (i, slot) in chunk {
                    let ticket = sched
                        .submit(queries[i], query_seed(i), 0)
                        .expect("default class admits");
                    *slot = Some(ticket.wait().expect("scheduled query answers"));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all served"))
        .collect()
}

/// Splits `(index, slot)` pairs into `stride` interleaved groups.
fn chunks_by_stride<T>(slots: &mut Vec<T>, stride: usize) -> Vec<Vec<T>> {
    let mut groups: Vec<Vec<T>> = (0..stride).map(|_| Vec::new()).collect();
    for (i, slot) in slots.drain(..).enumerate() {
        groups[i % stride].push(slot);
    }
    groups
}

fn assert_bit_identical(got: &[QueryResult], want: &[QueryResult], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.value.to_bits(),
            w.value.to_bits(),
            "{what}: query {i} value diverged ({} vs {})",
            g.value,
            w.value
        );
        assert_eq!(g, w, "{what}: query {i} metadata diverged");
    }
}

#[test]
fn concurrent_clients_are_bit_identical_to_serial() {
    let (federation, queries) = stand_up(0xABE1, None);
    let serial = serial_reference(&federation, &queries, &|s| Box::new(IidEst::new(s)));
    let concurrent = concurrent_run(&federation, &queries, |s| Box::new(IidEst::new(s)));
    assert_bit_identical(&concurrent, &serial, "IidEst");
}

#[test]
fn mixed_algorithm_factory_is_bit_identical_to_serial() {
    // The factory picks the estimator from the seed, the way a serving
    // deployment might route query classes to different algorithms. The
    // contract is per-submission, so mixing must change nothing.
    let pick = |s: u64| -> Box<dyn FraAlgorithm> {
        if s % 2 == 0 {
            Box::new(IidEst::new(s))
        } else {
            Box::new(NonIidEst::new(s))
        }
    };
    let (federation, queries) = stand_up(0xABE2, None);
    let serial = serial_reference(&federation, &queries, &pick);
    let concurrent = concurrent_run(&federation, &queries, pick);
    assert_bit_identical(&concurrent, &serial, "mixed factory");
}

#[test]
fn equivalence_holds_with_an_armed_fault_plan() {
    // Latency-only injection: silo 1 answers slowly, which reshuffles
    // tick boundaries and frame composition (some queries ride alone,
    // some coalesce) but can never change an answer. Serial ground truth
    // runs over the same faulted federation so both sides pay the same
    // injected latency.
    let plan = FaultPlan::seeded(0xFA17).slow_silo(1, Duration::from_millis(2));
    let (federation, queries) = stand_up(0xABE3, Some(plan));
    let serial = serial_reference(&federation, &queries, &|s| Box::new(IidEst::new(s)));
    let concurrent = concurrent_run(&federation, &queries, |s| Box::new(IidEst::new(s)));
    assert_bit_identical(&concurrent, &serial, "slow-silo fault plan");
}

#[test]
fn repeated_concurrent_runs_agree_with_each_other() {
    // Two scheduler runs over the same federation race differently —
    // different tick boundaries, different frame coalescing — yet must
    // agree bit for bit because each (query, seed) is self-contained.
    let (federation, queries) = stand_up(0xABE4, None);
    let first = concurrent_run(&federation, &queries, |s| Box::new(IidEst::new(s)));
    let second = concurrent_run(&federation, &queries, |s| Box::new(IidEst::new(s)));
    assert_bit_identical(&second, &first, "run-to-run");
}
