//! `fedra-cli` — poke a synthetic spatial data federation from the shell.
//!
//! ```text
//! fedra-cli demo                      # build a federation, show a comparison table
//! fedra-cli query --x 0 --y -95 --radius 2 --func count --algo noniid
//! fedra-cli stats                     # federation + index statistics
//! fedra-cli help
//! ```
//!
//! Global options: `--objects N` (default 60000), `--silos M` (default 6),
//! `--seed S`, `--grid-len KM`, `--iid` (IID partitions instead of
//! company-skewed).

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

use fedra::obs::labeled;
use fedra::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, options)) = parse(&args) else {
        eprintln!("error: malformed arguments (expected --key value pairs)");
        print_help();
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "demo" => demo(&options),
        "query" => query(&options),
        "sql" => sql(&options, &args),
        "stats" => stats(&options),
        "obs" => obs(&options),
        "help" | "" => {
            print_help();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command `{other}`");
            print_help();
            ExitCode::FAILURE
        }
    }
}

type Options = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Options)> {
    let mut command = String::new();
    let mut options = Options::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            if key == "iid" {
                options.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args.get(i + 1)?;
                options.insert(key.to_string(), value.clone());
                i += 2;
            }
        } else if command.is_empty() {
            command = arg.clone();
            i += 1;
        } else {
            // Positional payload (e.g. the SQL statement); commands that
            // use it re-read it from the raw args.
            i += 1;
        }
    }
    Some((command, options))
}

fn opt<T: std::str::FromStr>(options: &Options, key: &str, default: T) -> T {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--chaos SEED` turns the build into a resilience drill: one slow silo,
/// one flapping silo, a deadline/hedging call policy and an active
/// circuit breaker — all deterministic from the seed.
fn apply_resilience(builder: FederationBuilder, options: &Options) -> FederationBuilder {
    let Some(seed) = options.get("chaos").and_then(|v| v.parse::<u64>().ok()) else {
        return builder;
    };
    let slow = opt(options, "slow-silo", 0usize);
    let flappy = opt(options, "flappy-silo", 1usize);
    eprintln!("chaos mode: seed {seed}, slow silo {slow}, flapping silo {flappy}");
    builder
        .fault_plan(
            FaultPlan::seeded(seed)
                .slow_silo(slow, Duration::from_millis(40))
                .flapping_silo(flappy, 4, 2),
        )
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_millis(250)),
            hedge_after: Some(Duration::from_millis(10)),
            ..CallPolicy::default()
        })
        .health_config(HealthConfig::enabled())
}

fn build_federation(options: &Options) -> (Federation, Vec<SpatialObject>) {
    if let Some(path) = options.get("data") {
        eprintln!("loading dataset from {path} ...");
        let dataset = fedra::workload::read_csv(path, 1.0).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        let all = dataset.all_objects();
        let federation = apply_resilience(
            FederationBuilder::new(dataset.bounds()).grid_cell_len(opt(options, "grid-len", 1.0)),
            options,
        )
        .build(dataset.into_partitions());
        return (federation, all);
    }
    let spec = WorkloadSpec::default()
        .with_total_objects(opt(options, "objects", 60_000))
        .with_silos(opt(options, "silos", 6))
        .with_seed(opt(options, "seed", 0xC11u64))
        .with_distribution(if options.contains_key("iid") {
            Distribution::Iid
        } else {
            Distribution::CompanySkewed
        });
    eprintln!(
        "building federation: {} objects, {} silos ...",
        spec.total_objects, spec.num_silos
    );
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let federation = apply_resilience(
        FederationBuilder::new(dataset.bounds()).grid_cell_len(opt(options, "grid-len", 1.0)),
        options,
    )
    .build(dataset.into_partitions());
    (federation, all)
}

fn algorithms(seed: u64) -> Vec<Box<dyn FraAlgorithm>> {
    let params = AccuracyParams::default();
    vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(seed)),
        Box::new(IidEstLsr::new(seed ^ 1, params)),
        Box::new(NonIidEst::new(seed ^ 2)),
        Box::new(NonIidEstLsr::new(seed ^ 3, params)),
    ]
}

fn demo(options: &Options) -> ExitCode {
    let (federation, all) = build_federation(options);
    let mut generator = QueryGenerator::new(&all, opt(options, "seed", 0xC11u64) ^ 7);
    let n = opt(options, "queries", 50usize);
    let radius = opt(options, "radius", 2.0);
    let queries: Vec<FraQuery> = generator
        .circles(radius, n)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();

    let exact = Exact::new();
    let engine = QueryEngine::per_silo(&exact, &federation);
    let truth: Vec<f64> = engine.execute_batch(&federation, &queries).values();

    println!("\n{} COUNT queries, radius {radius} km:\n", queries.len());
    println!(
        "{:>16} {:>10} {:>12} {:>12} {:>12}",
        "algorithm", "MRE", "time (ms)", "q/s", "comm (KB)"
    );
    for alg in algorithms(opt(options, "seed", 0xC11u64)) {
        federation.reset_query_comm();
        let engine = QueryEngine::per_silo(alg.as_ref(), &federation);
        let batch = engine.execute_batch(&federation, &queries);
        println!(
            "{:>16} {:>9.2}% {:>12.2} {:>12.0} {:>12.1}",
            alg.name(),
            batch.mean_relative_error(&truth) * 100.0,
            batch.wall_time.as_secs_f64() * 1e3,
            batch.throughput_qps,
            batch.comm.total_bytes() as f64 / 1024.0,
        );
    }
    ExitCode::SUCCESS
}

fn query(options: &Options) -> ExitCode {
    let (federation, _) = build_federation(options);
    let x = opt(options, "x", 0.0);
    let y = opt(options, "y", -95.0);
    let radius = opt(options, "radius", 2.0);
    let func = match options.get("func").map(String::as_str).unwrap_or("count") {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "sum_sqr" => AggFunc::SumSqr,
        "avg" => AggFunc::Avg,
        "stdev" => AggFunc::Stdev,
        other => {
            eprintln!("error: unknown --func `{other}` (count|sum|sum_sqr|avg|stdev)");
            return ExitCode::FAILURE;
        }
    };
    let q = FraQuery::circle(Point::new(x, y), radius, func);
    let seed = opt(options, "seed", 0xC11u64);
    let result = match options.get("algo").map(String::as_str).unwrap_or("noniid") {
        "exact" => Exact::new().try_execute(&federation, &q),
        "opta" => Opta::new().try_execute(&federation, &q),
        "iid" => IidEst::new(seed).try_execute(&federation, &q),
        "iid-lsr" => IidEstLsr::new(seed, AccuracyParams::default()).try_execute(&federation, &q),
        "noniid" => NonIidEst::new(seed).try_execute(&federation, &q),
        "noniid-lsr" => {
            NonIidEstLsr::new(seed, AccuracyParams::default()).try_execute(&federation, &q)
        }
        "adaptive" => {
            let planner = AdaptivePlanner::new(seed, PlannerPolicy::default());
            match planner.execute_planned(&federation, &q) {
                Ok((decision, r)) => {
                    println!("plan  : {decision:?}");
                    Ok(r)
                }
                Err(e) => Err(e),
            }
        }
        other => {
            eprintln!(
                "error: unknown --algo `{other}` (exact|opta|iid|iid-lsr|noniid|noniid-lsr|adaptive)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(r) => {
            println!("query : {q}");
            println!("answer: {}", r.value);
            if let Some(silo) = r.sampled_silo {
                println!("silo  : {silo}");
            }
            if let Some(level) = r.lsr_level {
                println!("level : {level}");
            }
            let comm = federation.query_comm();
            println!(
                "comm  : {} rounds, {} bytes",
                comm.rounds,
                comm.total_bytes()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn sql(options: &Options, args: &[String]) -> ExitCode {
    // The statement is the first free token after `sql` that is not an
    // option; easiest robust form: everything after the literal "sql".
    let statement = args
        .iter()
        .skip_while(|a| *a != "sql")
        .skip(1)
        .take_while(|a| !a.starts_with("--"))
        .cloned()
        .collect::<Vec<_>>()
        .join(" ");
    if statement.is_empty() {
        eprintln!("error: usage: fedra-cli sql \"SELECT COUNT(*) FROM fleet WHERE WITHIN(x, y, r)\" [options]");
        return ExitCode::FAILURE;
    }
    let q = match fedra::core::sql::parse(&statement) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (federation, _) = build_federation(options);
    let seed = opt(options, "seed", 0xC11u64);
    match NonIidEst::new(seed).try_execute(&federation, &q) {
        Ok(r) => {
            println!("query : {q}");
            println!("answer: {}", r.value);
            let comm = federation.query_comm();
            println!(
                "comm  : {} rounds, {} bytes",
                comm.rounds,
                comm.total_bytes()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stats(options: &Options) -> ExitCode {
    let (federation, _) = build_federation(options);
    println!("\nfederation statistics");
    println!("  silos            : {}", federation.num_silos());
    println!("  objects          : {}", federation.total_objects());
    println!("  bounds           : {}", federation.bounds());
    let spec = federation.merged_grid().spec();
    println!(
        "  grid             : {}x{} cells of {} km",
        spec.nx(),
        spec.ny(),
        spec.cell_len()
    );
    println!(
        "  setup traffic    : {:.1} KB over {} rounds",
        federation.setup_comm().total_bytes() as f64 / 1024.0,
        federation.setup_comm().rounds
    );
    println!(
        "  provider indexes : {:.2} MB",
        federation.provider_memory_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("\nper-silo index memory (MB):");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "silo", "r-tree", "lsr extra", "grid", "histogram"
    );
    for (k, r) in federation.silo_memory_reports().iter().enumerate() {
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        println!(
            "{:>6} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            k,
            mb(r.rtree),
            mb(r.lsr_extra),
            mb(r.grid),
            mb(r.histogram)
        );
    }
    ExitCode::SUCCESS
}

fn obs(options: &Options) -> ExitCode {
    let (federation, all) = build_federation(options);
    let seed = opt(options, "seed", 0xC11u64);
    let mut generator = QueryGenerator::new(&all, seed ^ 7);
    let n = opt(options, "queries", 250usize);
    let radius = opt(options, "radius", 2.0);
    // --cache K: wrap the algorithm in the ε-aware answer cache and cycle
    // the batch over K hot ranges so hits actually occur; the cache's
    // `fedra_cache_*` counters then show up in every export format.
    let hot: Option<usize> = options.get("cache").map(|v| v.parse().unwrap_or(8));
    let ranges = generator.circles(radius, n);
    let queries: Vec<FraQuery> = match hot {
        Some(k) => {
            let k = k.clamp(1, ranges.len());
            (0..n)
                .map(|i| FraQuery::new(ranges[i % k], AggFunc::Count))
                .collect()
        }
        None => ranges
            .into_iter()
            .map(|r| FraQuery::new(r, AggFunc::Count))
            .collect(),
    };

    fn maybe_cache<A: FraAlgorithm + 'static>(algo: A, cached: bool) -> Box<dyn FraAlgorithm> {
        if cached {
            Box::new(AnswerCache::with_defaults(algo))
        } else {
            Box::new(algo)
        }
    }
    let params = AccuracyParams::default();
    let wrap = hot.is_some();
    let algo: Box<dyn FraAlgorithm> = match options.get("algo").map(String::as_str).unwrap_or("iid")
    {
        "exact" => maybe_cache(Exact::new(), wrap),
        "opta" => maybe_cache(Opta::new(), wrap),
        "iid" => maybe_cache(IidEst::new(seed), wrap),
        "iid-lsr" => maybe_cache(IidEstLsr::new(seed, params), wrap),
        "noniid" => maybe_cache(NonIidEst::new(seed), wrap),
        "noniid-lsr" => maybe_cache(NonIidEstLsr::new(seed, params), wrap),
        other => {
            eprintln!("error: unknown --algo `{other}` (exact|opta|iid|iid-lsr|noniid|noniid-lsr)");
            return ExitCode::FAILURE;
        }
    };

    let obs = ObsContext::new();
    federation.reset_query_comm();
    let engine = QueryEngine::per_silo(algo.as_ref(), &federation);
    let batch = engine.execute_batch_with(&federation, &queries, &obs);

    // Breaker state as gauges so every export format carries it
    // (0 = closed, 1 = half-open, 2 = open).
    for s in federation.health().snapshot() {
        let state = match s.state {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        };
        obs.set_gauge(&labeled("fedra_breaker_state", "silo", s.silo), state);
        if let Some(ewma) = s.latency_ewma_us {
            obs.set_gauge(&labeled("fedra_silo_latency_ewma_us", "silo", s.silo), ewma);
        }
    }

    match options.get("format").map(String::as_str).unwrap_or("text") {
        "prom" => print!("{}", obs.export_prometheus()),
        "json" => println!("{}", obs.export_json()),
        "text" => {
            eprintln!(
                "{} queries via {} in {:.2} ms ({} failures)\n",
                queries.len(),
                algo.name(),
                batch.wall_time.as_secs_f64() * 1e3,
                batch.failures()
            );
            println!("--- silo health ---");
            println!(
                "{:>6} {:>10} {:>9} {:>9} {:>12} {:>8} {:>8}",
                "silo", "state", "ok", "failed", "ewma (µs)", "opened", "closed"
            );
            for s in federation.health().snapshot() {
                println!(
                    "{:>6} {:>10} {:>9} {:>9} {:>12} {:>8} {:>8}",
                    s.silo,
                    s.state.label(),
                    s.successes_total,
                    s.failures_total,
                    s.latency_ewma_us
                        .map_or_else(|| "-".into(), |e| format!("{e:.0}")),
                    s.opened_total,
                    s.closed_total
                );
            }
            println!("--- prometheus ---");
            print!("{}", obs.export_prometheus());
            println!("--- json ---");
            println!("{}", obs.export_json());
            println!("--- last traces ---");
            for trace in obs.traces().iter().rev().take(3) {
                println!(
                    "{} [{}]{}",
                    trace.label,
                    trace.algorithm,
                    if trace.is_balanced() {
                        ""
                    } else {
                        " UNBALANCED"
                    }
                );
                for span in &trace.spans {
                    println!(
                        "  {:indent$}{} {} ns",
                        "",
                        span.name,
                        span.duration_ns,
                        indent = span.depth * 2
                    );
                }
                for (key, value) in &trace.attrs {
                    println!("  @{key} = {value}");
                }
            }
        }
        other => {
            eprintln!("error: unknown --format `{other}` (text|prom|json)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn print_help() {
    println!(
        "fedra-cli — approximate range aggregation over a spatial data federation

USAGE:
  fedra-cli <command> [options]

COMMANDS:
  demo     run a query batch through all six algorithms, print the comparison
  query    answer one circular query (--x --y --radius --func --algo)
  sql      answer one SQL-style statement, e.g.
             fedra-cli sql \"SELECT COUNT(*) FROM fleet WHERE WITHIN(0, -95, 2)\"
  stats    print federation and index statistics
  obs      run an instrumented batch, dump metrics + traces + silo health
             (--queries N, --algo A, --format text|prom|json, --cache K to
              wrap the algorithm in the answer cache over K hot ranges —
              fedra_cache_* counters appear in the metric dump)
  help     this text

RESILIENCE OPTIONS (any command):
  --chaos SEED    inject deterministic faults: one slow silo (--slow-silo,
                  default 0) and one flapping silo (--flappy-silo, default
                  1), with a deadline/hedging call policy and an active
                  circuit breaker; retry/hedge/breaker counters show up in
                  `obs` output

GLOBAL OPTIONS:
  --data FILE     load a CSV dataset (silo,x_km,y_km,measure) instead of
                  generating one (ignores --objects/--silos/--iid)
  --objects N     total objects (default 60000)
  --silos M       number of silos (default 6)
  --seed S        RNG seed (default 0xC11)
  --grid-len KM   grid cell length in km (default 1.0)
  --iid           IID partitions instead of company-skewed

QUERY OPTIONS:
  --x KM --y KM   circle center in projected km (default CBD: 0, -95)
  --radius KM     circle radius (default 2.0)
  --func F        count|sum|sum_sqr|avg|stdev (default count)
  --algo A        exact|opta|iid|iid-lsr|noniid|noniid-lsr (default noniid)

DEMO OPTIONS:
  --queries N     batch size (default 50)
  --radius KM     query radius (default 2.0)"
    );
}
