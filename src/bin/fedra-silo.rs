//! `fedra-silo` — host ONE data silo as a standalone process.
//!
//! A provider built with `FederationBuilder::connect_remote(addr)` talks
//! to this process over the length-prefixed socket protocol
//! (DESIGN.md §5h): same wire payloads, same deadline shedding, same
//! fault injection as the in-process backends, so a federation can span
//! processes and machines like the paper's 4–16-node cluster.
//!
//! ```text
//! fedra-silo serve --addr unix:/tmp/silo0.sock --data silo0.csv
//! fedra-silo serve --addr tcp:127.0.0.1:7401 --data silo1.csv --silo-id 1 \
//!                  --bounds -8,-8,8,8
//! ```
//!
//! Options for `serve`:
//! `--addr A` (required; `tcp:host:port`, `unix:/path`, or `host:port`),
//! `--data F` (required; `silo,x_km,y_km,measure` CSV, as written by
//! `fedra_workload::write_csv`), `--silo-id K` (serve partition `K` of
//! the CSV; default: every row in the file), `--bounds x0,y0,x1,y1`
//! (histogram/grid bounds — MUST match the provider's federation bounds
//! for answers to line up; default: the file's bounding box),
//! `--lsr-seed S` (default `0xFED0A`, the builder default), `--threads N`
//! (intra-silo worker pool; 0 = auto), `--latency-ms L` (simulated
//! per-request latency), and a deterministic fault spec:
//! `--fault-seed S --fault-transient P --fault-drop P`
//! `--fault-crash-after N --fault-latency-ms L`.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use fedra::federation::{
    FaultPlan, Silo, SiloAddr, SiloConfig, SiloSocketServer, SocketServerConfig,
};
use fedra::federation::{FlapSchedule, SiloFaultSpec};
use fedra::geo::{Point, Rect, SpatialObject};
use fedra::index::histogram::MinSkewConfig;
use fedra::index::rtree::RTreeConfig;
use fedra::workload::read_csv;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = if args.first().map(String::as_str) == Some("serve") {
        args.remove(0);
        "serve"
    } else if args.iter().any(|a| a == "--help") || args.is_empty() {
        print_help();
        return ExitCode::SUCCESS;
    } else {
        eprintln!("error: unknown command (only `serve` is supported)");
        print_help();
        return ExitCode::FAILURE;
    };
    debug_assert_eq!(command, "serve");
    let Some(options) = parse(&args) else {
        eprintln!("error: malformed arguments (expected --key value pairs)");
        print_help();
        return ExitCode::FAILURE;
    };
    if options.contains_key("help") {
        print_help();
        return ExitCode::SUCCESS;
    }
    serve(&options)
}

type Options = HashMap<String, String>;

fn parse(args: &[String]) -> Option<Options> {
    let mut options = Options::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        if key == "help" {
            options.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args.get(i + 1)?;
            options.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Some(options)
}

fn opt<T: std::str::FromStr>(options: &Options, key: &str, default: T) -> T {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_help() {
    println!(
        "fedra-silo — host one data silo behind a socket\n\n\
         usage: fedra-silo serve --addr ADDR --data FILE.csv\n\
                [--silo-id K] [--bounds x0,y0,x1,y1] [--lsr-seed S]\n\
                [--threads N] [--latency-ms L] [--snapshot-dir DIR]\n\
                [--fault-seed S] [--fault-transient P] [--fault-drop P]\n\
                [--fault-crash-after N] [--fault-latency-ms L]\n\n\
         ADDR is tcp:host:port, unix:/path, or bare host:port. The CSV\n\
         columns are silo,x_km,y_km,measure (the workload crate's CSV).\n\
         --bounds and --lsr-seed must match the provider's federation\n\
         for remote answers to be identical to a local run.\n\
         --snapshot-dir persists the built grid (checksummed) to\n\
         DIR/silo-K.grid after every BuildGrid and warm-starts from it\n\
         on respawn, so a crashed silo rejoins without re-binning."
    );
}

fn parse_bounds(spec: &str) -> Option<Rect> {
    let parts: Vec<f64> = spec
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<_>>()?;
    match parts[..] {
        [x0, y0, x1, y1] => Some(Rect::new(Point::new(x0, y0), Point::new(x1, y1))),
        _ => None,
    }
}

fn fault_config(options: &Options, silo_id: usize) -> Option<FaultPlan> {
    let spec = SiloFaultSpec {
        latency: options
            .get("fault-latency-ms")
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis),
        jitter: None,
        drop_prob: opt(options, "fault-drop", 0.0),
        transient_prob: opt(options, "fault-transient", 0.0),
        crash_after: options
            .get("fault-crash-after")
            .and_then(|v| v.parse().ok()),
        flap: options.get("fault-flap").and_then(|v| {
            let (period, down) = v.split_once(':')?;
            Some(FlapSchedule {
                period: period.parse().ok()?,
                down: down.parse().ok()?,
                phase: 0,
            })
        }),
    };
    if spec == SiloFaultSpec::default() {
        return None;
    }
    Some(FaultPlan::seeded(opt(options, "fault-seed", 0)).with_spec(silo_id, spec))
}

fn serve(options: &Options) -> ExitCode {
    let Some(addr_spec) = options.get("addr") else {
        eprintln!("error: --addr is required");
        return ExitCode::FAILURE;
    };
    let addr = match SiloAddr::parse(addr_spec) {
        Ok(addr) => addr,
        Err(reason) => {
            eprintln!("error: bad --addr: {reason}");
            return ExitCode::FAILURE;
        }
    };
    let Some(data) = options.get("data") else {
        eprintln!("error: --data is required");
        return ExitCode::FAILURE;
    };
    let dataset = match read_csv(data, 0.0) {
        Ok(dataset) => dataset,
        Err(e) => {
            eprintln!("error: could not load {data}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let inferred_bounds = dataset.bounds();
    let silo_id: usize = opt(options, "silo-id", 0);
    let objects: Vec<SpatialObject> = match options.get("silo-id") {
        Some(_) => match dataset.partitions().get(silo_id) {
            Some(partition) => partition.clone(),
            None => {
                eprintln!("error: {data} has no partition {silo_id}");
                return ExitCode::FAILURE;
            }
        },
        None => dataset.all_objects(),
    };
    let bounds = match options.get("bounds") {
        Some(spec) => match parse_bounds(spec) {
            Some(bounds) => bounds,
            None => {
                eprintln!("error: --bounds must be x0,y0,x1,y1");
                return ExitCode::FAILURE;
            }
        },
        None => inferred_bounds,
    };
    let config = SiloConfig {
        rtree: RTreeConfig::default(),
        histogram: MinSkewConfig::default(),
        bounds,
        lsr_seed: opt(options, "lsr-seed", 0x000F_ED0A),
        threads: opt(options, "threads", 0),
    };
    let num_objects = objects.len();
    let silo = Silo::new(silo_id, objects, config);
    // Crash recovery (DESIGN.md §5i): with --snapshot-dir, the grid built
    // by the provider's BuildGrid is checksummed to disk after every
    // (re)build, and a respawned process warm-starts from that file — the
    // next BuildGrid answers from the restored grid without re-binning.
    let snapshot_path = match options.get("snapshot-dir") {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!(
                    "error: could not create --snapshot-dir {}: {e}",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
            Some(dir.join(format!("silo-{silo_id}.grid")))
        }
        None => None,
    };
    if let Some(path) = &snapshot_path {
        match silo.load_grid_snapshot(path) {
            Ok(true) => println!(
                "fedra-silo: silo {silo_id} loaded grid snapshot from {}",
                path.display()
            ),
            Ok(false) => {}
            Err(e) => {
                // Corrupt snapshot: refuse to guess — start cold and let
                // the next BuildGrid rebuild and overwrite it.
                eprintln!(
                    "warning: ignoring corrupt grid snapshot {}: {e}",
                    path.display()
                );
            }
        }
    }
    let faults = fault_config(options, silo_id).and_then(|plan| {
        // Standalone faults arm immediately — there is no provider-side
        // setup phase to protect in this process.
        plan.injector_for(silo_id, Arc::new(AtomicBool::new(true)))
    });
    let server_config = SocketServerConfig {
        latency: options
            .get("latency-ms")
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis),
        faults,
        snapshot_path,
    };
    let server = match SiloSocketServer::spawn(silo, &addr, server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not serve on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fedra-silo: serving silo {silo_id} ({num_objects} objects, bounds {:?}) on {}",
        bounds,
        server.addr()
    );
    server.join();
    ExitCode::SUCCESS
}
