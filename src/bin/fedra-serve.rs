//! `fedra-serve` — run a synthetic federation behind the concurrent
//! query scheduler and drive it with sustained multi-client load.
//!
//! ```text
//! fedra-serve                                  # 8 clients, 2s, deadline-free
//! fedra-serve --clients 16 --secs 5 --qps 2000 # open loop at 2000 q/s offered
//! fedra-serve --deadline-ms 25 --algo noniid   # real-time class, NonIID-est
//! ```
//!
//! Options: `--objects N` (default 60000), `--silos M` (default 6),
//! `--seed S`, `--clients K` (default 8), `--secs T` (default 2),
//! `--qps Q` (offered load; 0 = closed loop, the default),
//! `--deadline-ms D` (admission deadline from submission; 0 = none),
//! `--algo iid|noniid` (default iid), `--obs` (dump the metric registry).
//!
//! Each client submits queries under a fixed per-submission seed, so any
//! answer served here is reproducible serially (DESIGN.md §5g).

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fedra::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(options) = parse(&args) else {
        eprintln!("error: malformed arguments (expected --key value pairs)");
        print_help();
        return ExitCode::FAILURE;
    };
    if options.contains_key("help") {
        print_help();
        return ExitCode::SUCCESS;
    }
    serve(&options)
}

type Options = HashMap<String, String>;

fn parse(args: &[String]) -> Option<Options> {
    let mut options = Options::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        if key == "obs" || key == "help" {
            options.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args.get(i + 1)?;
            options.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Some(options)
}

fn opt<T: std::str::FromStr>(options: &Options, key: &str, default: T) -> T {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_help() {
    println!(
        "fedra-serve — sustained-load serving harness\n\n\
         usage: fedra-serve [--objects N] [--silos M] [--seed S]\n\
                [--clients K] [--secs T] [--qps Q] [--deadline-ms D]\n\
                [--algo iid|noniid] [--obs]\n\n\
         --qps 0 (default) runs closed loop: every client submits and\n\
         waits back to back. --qps Q offers Q queries/s across clients\n\
         open loop; with --deadline-ms the scheduler sheds what the\n\
         budget cannot serve."
    );
}

fn serve(options: &Options) -> ExitCode {
    let objects: usize = opt(options, "objects", 60_000);
    let silos: usize = opt(options, "silos", 6);
    let seed: u64 = opt(options, "seed", 42);
    let clients: usize = opt(options, "clients", 8).max(1);
    let secs: f64 = opt(options, "secs", 2.0);
    let qps: f64 = opt(options, "qps", 0.0);
    let deadline_ms: u64 = opt(options, "deadline-ms", 0);
    let algo = options
        .get("algo")
        .map_or("iid", String::as_str)
        .to_string();

    println!("standing up {objects} objects across {silos} silos (seed {seed})...");
    let spec = WorkloadSpec::default()
        .with_total_objects(objects)
        .with_silos(silos)
        .with_seed(seed);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let bounds = dataset.bounds();
    let federation = Arc::new(
        FederationBuilder::new(bounds)
            .grid_cell_len(1.0)
            .lsr_seed(seed ^ 0x15AF)
            .build(dataset.into_partitions()),
    );
    let mut generator = QueryGenerator::new(&all, seed ^ 0x9E37);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 512)
        .into_iter()
        .map(|range| FraQuery::new(range, AggFunc::Count))
        .collect();

    let class = if deadline_ms == 0 {
        ClassPolicy::unbounded("serve", 4096)
    } else {
        ClassPolicy::with_deadline("serve", 4096, Duration::from_millis(deadline_ms))
    };
    let obs = Arc::new(ObsContext::new());
    let factory: Box<dyn Fn(u64) -> Box<dyn FraAlgorithm> + Send + Sync> = match algo.as_str() {
        "iid" => Box::new(|s| Box::new(IidEst::new(s)) as Box<dyn FraAlgorithm>),
        "noniid" => Box::new(|s| Box::new(NonIidEst::new(s)) as Box<dyn FraAlgorithm>),
        other => {
            eprintln!("error: unknown algorithm `{other}` (expected iid|noniid)");
            return ExitCode::FAILURE;
        }
    };
    let sched = Arc::new(QueryScheduler::start(
        Arc::clone(&federation),
        move |s| factory(s),
        SchedulerConfig {
            classes: vec![class],
            ..SchedulerConfig::default()
        },
        Arc::clone(&obs),
    ));

    let window = Duration::from_secs_f64(secs.max(0.1));
    let rejected = Arc::new(AtomicUsize::new(0));
    let served = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    println!(
        "serving: {clients} client(s), {} for {:.1}s...",
        if qps > 0.0 {
            format!("open loop at {qps:.0} q/s offered")
        } else {
            "closed loop".to_string()
        },
        window.as_secs_f64()
    );
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let sched = Arc::clone(&sched);
            let queries = &queries;
            let rejected = Arc::clone(&rejected);
            let served = Arc::clone(&served);
            let shed = Arc::clone(&shed);
            scope.spawn(move || {
                let begun = Instant::now();
                let mut cursor = client;
                let mut tickets = Vec::new();
                if qps > 0.0 {
                    // Open loop: slot pacing, tickets drained at the end.
                    const SLOT: Duration = Duration::from_millis(5);
                    let per_slot = (qps / clients as f64 * SLOT.as_secs_f64()).max(1.0) as usize;
                    while begun.elapsed() < window {
                        let slot_end = Instant::now() + SLOT;
                        for _ in 0..per_slot {
                            let q = queries[cursor % queries.len()];
                            match sched.submit(q, seed ^ cursor as u64, 0) {
                                Ok(t) => tickets.push(t),
                                Err(_) => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            cursor += clients;
                        }
                        if let Some(nap) = slot_end.checked_duration_since(Instant::now()) {
                            std::thread::sleep(nap);
                        }
                    }
                } else {
                    // Closed loop: submit-and-wait back to back.
                    while begun.elapsed() < window {
                        let q = queries[cursor % queries.len()];
                        match sched.submit(q, seed ^ cursor as u64, 0) {
                            Ok(t) => tickets.push(t),
                            Err(_) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        cursor += clients;
                        if let Some(t) = tickets.pop() {
                            match t.wait() {
                                Ok(_) => {
                                    served.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
                for t in tickets {
                    match t.wait() {
                        Ok(_) => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let served = served.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed);
    let snap = obs.registry().snapshot();
    let hist = snap.histograms.get("fedra_sched_latency_ns");
    let pct = |q: f64| {
        hist.and_then(|h| h.quantile(q))
            .map_or("-".to_string(), |ns| format!("{:.2} ms", ns as f64 / 1e6))
    };
    println!(
        "served {served} queries in {elapsed:.2}s ({:.0} q/s)",
        served as f64 / elapsed
    );
    println!(
        "shed {shed} (rate {:.1} %)",
        shed as f64 / (served + shed).max(1) as f64 * 100.0
    );
    println!(
        "latency p50 {} / p95 {} / p99 {}",
        pct(0.50),
        pct(0.95),
        pct(0.99)
    );
    let comm = federation.query_comm();
    println!(
        "comm: {} rounds, {} bytes up, {} bytes down",
        comm.rounds, comm.bytes_up, comm.bytes_down
    );
    println!("breaker leaks: {}", federation.health().non_closed().len());
    if options.contains_key("obs") {
        print!("{}", obs.export_prometheus());
    }
    ExitCode::SUCCESS
}
