//! # fedra — approximate range aggregation over spatial data federations
//!
//! `fedra` is a from-scratch Rust implementation of the FRA (Federated
//! Range Aggregation) system of Shi et al., *"Efficient Approximate Range
//! Aggregation over Large-scale Spatial Data Federation"* (ICDE 2022):
//! COUNT/SUM/AVG/STDEV aggregation over circular or rectangular ranges
//! when the data is horizontally partitioned across silos that never share
//! raw rows.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`geo`] — geometry: points, rectangles, circles, ranges, projections;
//! * [`index`] — grid index + prefix sums, aggregate R-tree, LSR-Forest,
//!   histograms;
//! * [`federation`] — the silo/provider runtime with byte-counted RPC;
//! * [`core`] — the FRA algorithms (EXACT, OPTA, IID-est, NonIID-est,
//!   their +LSR variants), the multi-query framework and accuracy theory;
//! * [`obs`] — query-lifecycle tracing, federation metrics, exporters;
//! * [`workload`] — synthetic Beijing-like workloads and parameter sweeps.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or in short:
//!
//! ```
//! use fedra::prelude::*;
//!
//! // Generate a small 3-silo federation worth of data.
//! let spec = WorkloadSpec::small();
//! let dataset = spec.generate();
//!
//! // Stand the federation up (each silo builds its indices).
//! let federation = FederationBuilder::new(dataset.bounds())
//!     .grid_cell_len(1.0)
//!     .build(dataset.partitions().to_vec());
//!
//! // Ask: how many objects within 2 km of the city center?
//! let query = FraQuery::circle(Point::new(0.0, 0.0), 2.0, AggFunc::Count);
//! let exact = Exact::new().execute(&federation, &query);
//! let approx = NonIidEst::new(7).execute(&federation, &query);
//! let rel_err = (approx.value - exact.value).abs() / exact.value.max(1.0);
//! assert!(rel_err < 0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use fedra_core as core;
pub use fedra_federation as federation;
pub use fedra_geo as geo;
pub use fedra_index as index;
pub use fedra_obs as obs;
pub use fedra_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    #[allow(deprecated)]
    pub use fedra_core::CachedAlgorithm;
    pub use fedra_core::{
        AccuracyParams, AdaptivePlanner, AnswerCache, BatchResult, CacheAnswer, CacheConfig,
        CachePolicy, CacheSource, CacheStats, ClassPolicy, Coverage, Exact, ExactSequential,
        FraAlgorithm, FraError, FraQuery, IidEst, IidEstLsr, MultiSiloEst, NonIidEst, NonIidEstLsr,
        Opta, PlanDecision, PlannerPolicy, QueryEngine, QueryResult, QueryScheduler, QueryTicket,
        SchedulerConfig, SubmitError,
    };
    pub use fedra_federation::{
        BreakerState, CallPolicy, ChaosPlan, ChaosProxy, DegradePolicy, FaultPlan, Federation,
        FederationBuilder, FlapSchedule, HealthConfig, HealthTracker, ReconnectAttempts,
        ReconnectPolicy, Silo, SiloAddr, SiloConfig, SiloFaultSpec, SiloHealthSnapshot, SiloId,
        SiloSocketServer, SocketServerConfig, Transport, TransportBackend, TransportError,
    };
    pub use fedra_geo::{Circle, GeoPoint, Point, Projection, Range, Rect, SpatialObject};
    pub use fedra_index::{AggFunc, Aggregate, GridPyramid, IndexMemory, PyramidEstimate};
    pub use fedra_obs::{
        CommCounters, CommSnapshot, MetricsRegistry, MetricsSnapshot, ObsContext, QueryTrace,
    };
    pub use fedra_workload::{Dataset, Distribution, QueryGenerator, SweepConfig, WorkloadSpec};
}
